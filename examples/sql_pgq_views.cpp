// SQL/PGQ host walk-through (Figures 2 and 9, left branch): base tables,
// CREATE PROPERTY GRAPH as a view definition, GRAPH_TABLE projections back
// into tables — including the surface-syntax form.

#include <cstdio>

#include "pgq/graph_table.h"
#include "pgq/graph_view.h"

int main() {
  gpml::Catalog catalog;

  // Figure 2: install the tabular representation of the Figure 1 graph.
  gpml::Result<gpml::GraphViewDef> def = gpml::InstallPaperTables(catalog);
  if (!def.ok()) {
    std::printf("setup failed: %s\n", def.status().ToString().c_str());
    return 1;
  }
  std::printf("Base tables: ");
  for (const std::string& name : catalog.TableNames()) {
    std::printf("%s ", name.c_str());
  }
  std::printf("\n\nAccount table:\n%s\n",
              (*catalog.GetTable("Account"))->ToString().c_str());

  // CREATE PROPERTY GRAPH paper_graph ...
  gpml::Status st = gpml::CreatePropertyGraph(catalog, *def);
  if (!st.ok()) {
    std::printf("create graph failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto graph = *catalog.GetGraph("paper_graph");
  std::printf("CREATE PROPERTY GRAPH paper_graph -> %s\n\n",
              graph->Summary().c_str());

  // GRAPH_TABLE with the PGQL-style Figure 4 query (§3).
  gpml::GraphTableQuery q;
  q.graph = "paper_graph";
  q.match =
      "MATCH (x:Account)-[:isLocatedIn]->(g:City)<-[:isLocatedIn]-"
      "(y:Account), ANY (x)-[e:Transfer]->+(y) "
      "WHERE x.isBlocked='no' AND y.isBlocked='yes' "
      "AND g.name='Ankh-Morpork'";
  q.columns = "x.owner AS A, y.owner AS B";
  gpml::Result<gpml::Table> t = gpml::GraphTable(catalog, q);
  if (!t.ok()) {
    std::printf("GRAPH_TABLE failed: %s\n", t.status().ToString().c_str());
    return 1;
  }
  std::printf("SELECT A, B FROM GRAPH_TABLE(paper_graph, ...Figure 4...):\n%s\n",
              t->ToString().c_str());

  // LISTAGG over the group edge variable, as in the §3 PGQL discussion.
  q.match =
      "MATCH ANY SHORTEST (x:Account WHERE x.owner='Dave')"
      "-[e:Transfer]->+(y:Account WHERE y.owner='Aretha')";
  q.columns =
      "x.owner AS A, y.owner AS B, LISTAGG(e, ', ') AS edges, "
      "COUNT(e) AS hops";
  t = gpml::GraphTable(catalog, q);
  if (t.ok()) {
    std::printf("Shortest Dave->Aretha chain with LISTAGG(e.ID):\n%s\n",
                t->ToString().c_str());
  }

  // The SQL surface form, parsed.
  gpml::Result<gpml::GraphTableQuery> parsed = gpml::ParseGraphTableCall(
      "GRAPH_TABLE(paper_graph, "
      "MATCH (a:Account)~[:hasPhone]~(p:Phone) "
      "COLUMNS (p AS phone, a.owner AS owner))");
  if (parsed.ok()) {
    t = gpml::GraphTable(catalog, *parsed);
    if (t.ok()) {
      gpml::Table sorted = *t;
      sorted.SortRows();
      std::printf("Parsed surface GRAPH_TABLE call (phone book):\n%s\n",
                  sorted.ToString().c_str());
    }
  }

  return 0;
}
