// gpml_top: a `top` for query workloads (docs/observability.md).
//
//   gpml_top [--host ADDR] [--port N] [--graph NAME] [--tenant NAME]
//            [-n ROWS] [--watch [SECONDS]]
//
// Polls a gpml_server's HTTP GET /query_stats endpoint and renders the
// heaviest query fingerprints as a table, sorted by total time (the
// server's order). One-shot by default; --watch repaints every interval
// (default 2s) until interrupted. A fingerprint flagged with '!' in the
// PLAN column changed plans since it was first seen — the plan-change
// regression signal surfaced inline.

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "server/json.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host ADDR] [--port N] [--graph NAME]\n"
               "          [--tenant NAME] [-n ROWS] [--watch [SECONDS]]\n",
               argv0);
}

/// One blocking HTTP/1.1 GET with Connection: close; returns the body.
/// Plain sockets, no TLS — the server speaks HTTP only for the loopback
/// observability endpoints.
bool HttpGet(const std::string& host, int port, const std::string& target,
             std::string* body, std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    *error = std::string("resolve ") + host + ": " + ::gai_strerror(rc);
    return false;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    *error = "connect " + host + ":" + port_str + ": " + std::strerror(errno);
    return false;
  }
  std::string request = "GET " + target +
                        " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    ssize_t n = ::send(fd, request.data() + off, request.size() - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("send: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[65536];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    *error = "malformed HTTP response";
    return false;
  }
  if (response.rfind("HTTP/1.1 200", 0) != 0) {
    size_t eol = response.find("\r\n");
    *error = "server answered: " + response.substr(0, eol);
    return false;
  }
  *body = response.substr(header_end + 4);
  return true;
}

double NumberField(const gpml::server::JsonValue& entry,
                   const std::string& key) {
  const gpml::server::JsonValue* v = entry.Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : 0;
}

std::string StringField(const gpml::server::JsonValue& entry,
                        const std::string& key) {
  const gpml::server::JsonValue* v = entry.Find(key);
  return v != nullptr && v->is_string() ? v->string_v : "";
}

/// Collapses the fingerprint to one displayable line of at most `width`
/// columns (fingerprints are whole normalized patterns, possibly long).
std::string Ellipsize(std::string text, size_t width) {
  for (char& c : text) {
    if (c == '\n' || c == '\t') c = ' ';
  }
  if (text.size() > width) {
    text.resize(width > 3 ? width - 3 : width);
    if (width > 3) text += "...";
  }
  return text;
}

int RenderOnce(const std::string& host, int port, const std::string& target,
               size_t top_n) {
  std::string body;
  std::string error;
  if (!HttpGet(host, port, target, &body, &error)) {
    std::fprintf(stderr, "gpml_top: %s\n", error.c_str());
    return 1;
  }
  // The endpoint serves one JSON array followed by a newline.
  while (!body.empty() && (body.back() == '\n' || body.back() == '\r')) {
    body.pop_back();
  }
  gpml::Result<gpml::server::JsonValue> parsed =
      gpml::server::ParseJson(body);
  if (!parsed.ok() || !parsed->is_array()) {
    std::fprintf(stderr, "gpml_top: bad /query_stats payload: %s\n",
                 parsed.ok() ? "not an array"
                             : parsed.status().message().c_str());
    return 1;
  }
  std::printf("%5s %8s %10s %9s %9s %9s %12s %6s  %s\n", "PLAN", "CALLS",
              "TOTAL_MS", "MEAN_MS", "P95_MS", "ERRORS", "STEPS", "GRAPH",
              "FINGERPRINT");
  size_t shown = 0;
  for (const gpml::server::JsonValue& entry : parsed->array_v) {
    if (shown >= top_n) break;
    const gpml::server::JsonValue* changed = entry.Find("plan_changed");
    bool plan_changed =
        changed != nullptr && changed->is_bool() && changed->bool_v;
    std::printf("%5s %8.0f %10.3f %9.3f %9.3f %9.0f %12.0f %6s  %s\n",
                plan_changed ? "!" : "-", NumberField(entry, "calls"),
                NumberField(entry, "total_ms"), NumberField(entry, "mean_ms"),
                NumberField(entry, "p95_ms"), NumberField(entry, "errors"),
                NumberField(entry, "steps"),
                Ellipsize(StringField(entry, "graph"), 6).c_str(),
                Ellipsize(StringField(entry, "fingerprint"), 60).c_str());
    ++shown;
  }
  std::printf("%zu of %zu fingerprints shown\n", shown,
              parsed->array_v.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7687;
  std::string graph;
  std::string tenant;
  size_t top_n = 20;
  bool watch = false;
  double interval_s = 2.0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--graph") {
      graph = next();
    } else if (arg == "--tenant") {
      tenant = next();
    } else if (arg == "-n" || arg == "--top") {
      top_n = static_cast<size_t>(std::atoi(next()));
      if (top_n == 0) top_n = 1;
    } else if (arg == "--watch") {
      watch = true;
      // Optional numeric operand: --watch 5.
      if (i + 1 < argc && std::atof(argv[i + 1]) > 0) {
        interval_s = std::atof(argv[++i]);
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  std::string target = "/query_stats";
  std::string sep = "?";
  if (!graph.empty()) {
    target += sep + "graph=" + graph;
    sep = "&";
  }
  if (!tenant.empty()) target += sep + "tenant=" + tenant;

  if (!watch) return RenderOnce(host, port, target, top_n);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    // ANSI clear + home, like watch(1); harmless when piped to a file.
    std::printf("\x1b[2J\x1b[H");
    int rc = RenderOnce(host, port, target, top_n);
    std::fflush(stdout);
    if (rc != 0) return rc;
    double slept = 0;
    while (g_stop == 0 && slept < interval_s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      slept += 0.05;
    }
  }
  return 0;
}
