#ifndef GPML_GRAPH_CSR_INDEX_H_
#define GPML_GRAPH_CSR_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ast/label_expr.h"
#include "common/value.h"
#include "graph/adjacency.h"
#include "graph/symbol_table.h"

namespace gpml {

/// A contiguous run of adjacency records — the unit the matcher's expansion
/// loop iterates. Obtained either from the full per-node adjacency list or
/// from one of CsrIndex's label partitions.
struct AdjSpan {
  const Adjacency* data = nullptr;
  size_t count = 0;

  const Adjacency* begin() const { return data; }
  const Adjacency* end() const { return data + count; }
  bool empty() const { return count == 0; }

  /// Indexed access and sub-ranges, used by the batch matcher's gather loop
  /// to walk a range in fixed-size chunks (docs/vectorized.md).
  const Adjacency& operator[](size_t i) const { return data[i]; }
  AdjSpan Slice(size_t offset, size_t n) const {
    return {data + offset, n < count - offset ? n : count - offset};
  }
};

/// Label-partitioned CSR adjacency: for every node, the incident-edge
/// records are grouped into buckets by edge-label symbol, so expansion with
/// a known edge label is one contiguous range scan instead of a filter over
/// every incident edge.
///
/// Invariants (checked by tests/csr_index_test.cc):
///  * An edge with k labels contributes one record to k buckets of each
///    endpoint it is incident to; label-less edges appear in no bucket (they
///    can never match a name-bearing label expression).
///  * Within a bucket, records keep the relative order of the legacy
///    per-node adjacency list. A bucket scan therefore yields successor
///    states in exactly the order the legacy full-scan-and-filter produced,
///    which is what keeps result rows byte-identical across use_csr on/off.
///  * Buckets of one node are sorted by label symbol (binary search).
class CsrIndex {
 public:
  void Build(const std::vector<std::vector<Adjacency>>& adjacency,
             const std::vector<uint32_t>& edge_label_offsets,
             const std::vector<Symbol>& edge_label_syms);

  /// The records of `node` whose edge carries `label`; empty span for
  /// unknown labels or label-less partitions.
  AdjSpan Range(uint32_t node, Symbol label) const;

  /// Total records across all buckets (tests, memory accounting).
  size_t num_entries() const { return entries_.size(); }

 private:
  struct Bucket {
    Symbol label = kInvalidSymbol;
    uint32_t begin = 0;  // Into entries_.
    uint32_t end = 0;
  };

  std::vector<uint32_t> node_begin_;  // size nodes+1, into buckets_.
  std::vector<Bucket> buckets_;
  std::vector<Adjacency> entries_;
};

/// A label expression compiled against one graph's symbol table: label names
/// resolve to symbol ids once, and per-element evaluation is bit tests over
/// the element's label bitmask (graphs with <= 64 distinct labels) or binary
/// searches over its sorted symbol array — no string hashing or comparisons
/// in the matcher's hot loop. Compiled once per Program when the engine
/// binds a plan to a graph (see BindProgramToGraph), cached with the plan.
class CompiledLabelPred {
 public:
  /// `use_bits` must be true only when the graph's label universe fits the
  /// 64-bit masks (labels.size() <= 64).
  static CompiledLabelPred Compile(const LabelExprPtr& expr,
                                   const SymbolTable& labels, bool use_bits);

  /// Evaluates against one element's interned label set: `bits` is its
  /// label bitmask (meaningful only when compiled with use_bits), `syms` its
  /// sorted symbol array of `count` entries.
  bool Matches(uint64_t bits, const Symbol* syms, size_t count) const;

 private:
  enum class Kind : uint8_t {
    kAlwaysTrue,  // No label constraint.
    kNever,       // Unsatisfiable (e.g. a name the graph never uses).
    kAllOf,       // (bits & mask) == mask: name or conjunction of names.
    kAnyOf,       // (bits & mask) != 0: disjunction of names, wildcard.
    kGeneral,     // Postfix program over the symbol set (any expression).
  };

  struct Op {
    enum class Code : uint8_t { kTestName, kTestAny, kNot, kAnd, kOr };
    Code code = Code::kTestName;
    Symbol sym = kInvalidSymbol;  // kTestName.
  };

  Kind kind_ = Kind::kAlwaysTrue;
  bool use_bits_ = false;
  uint64_t mask_ = 0;
  std::vector<Op> ops_;  // kGeneral, postfix order.
};

/// Equality seed index: (node-label symbol, property-key symbol, value) ->
/// the nodes carrying that label whose property equals the value, in
/// ascending node-id order (the same relative order label-scan seeding
/// enumerates, which keeps planner-chosen index seeding byte-identical).
/// Values use the engine's structural equality, under which 1 == 1.0 and
/// hashes agree, matching SQL = on non-null literals exactly.
class PropertySeedIndex {
 public:
  void Add(Symbol label, Symbol key, const Value& value, uint32_t node);

  /// Nodes with `label` whose `key` property equals `value`; the empty list
  /// when no node qualifies (which makes an index seed of an absent value a
  /// correct empty seed set, not a fallback).
  const std::vector<uint32_t>& Lookup(Symbol label, Symbol key,
                                      const Value& value) const;

  size_t num_keys() const { return index_.size(); }

 private:
  struct Key {
    Symbol label;
    Symbol key;
    Value value;

    friend bool operator==(const Key& a, const Key& b) {
      return a.label == b.label && a.key == b.key && a.value == b.value;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = k.value.Hash();
      h ^= (static_cast<size_t>(k.label) + 0x9e3779b97f4a7c15ULL) +
           (h << 6) + (h >> 2);
      h ^= (static_cast<size_t>(k.key) + 0x517cc1b727220a95ULL) + (h << 6) +
           (h >> 2);
      return h;
    }
  };

  std::unordered_map<Key, std::vector<uint32_t>, KeyHash> index_;
};

}  // namespace gpml

#endif  // GPML_GRAPH_CSR_INDEX_H_
