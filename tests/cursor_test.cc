// Streaming cursor execution: rows pulled through a Cursor are
// byte-identical to Engine::Match's materialized row sequence (a prefix of
// it under LIMIT) across the full option matrix {threads 1,8} x {csr
// on/off} x {planner on/off} x {limit absent/present}, for both cursor
// modes (chunked single-declaration streaming and lazy-batch). Mid-stream
// abandonment leaks nothing; budget exhaustion surfaces as a flagged
// truncation under BudgetPolicy::kTruncate, distinct from a clean LIMIT
// stop.

#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "eval/engine.h"
#include "gql/session.h"
#include "graph/generator.h"
#include "graph/sample_graph.h"
#include "pgq/graph_table.h"

namespace gpml {
namespace {

std::string CanonRow(const ResultRow& row, const MatchOutput& context,
                     const PropertyGraph& g) {
  std::string s;
  for (const auto& pb : row.bindings) {
    s += pb->ToString(g, *context.vars);
    s += " | ";
  }
  return s;
}

/// Ordered canonical rows of the batch oracle.
std::vector<std::string> MatchRows(const PropertyGraph& g,
                                   const std::string& query,
                                   const EngineOptions& options) {
  Engine engine(g, options);
  Result<MatchOutput> out = engine.Match(query);
  EXPECT_TRUE(out.ok()) << query << " -> " << out.status();
  std::vector<std::string> rows;
  if (!out.ok()) return rows;
  rows.reserve(out->rows.size());
  for (const ResultRow& row : out->rows) {
    rows.push_back(CanonRow(row, *out, g));
  }
  return rows;
}

/// Ordered canonical rows streamed through a cursor.
std::vector<std::string> CursorRows(const PropertyGraph& g,
                                    const std::string& query,
                                    const EngineOptions& options,
                                    std::optional<uint64_t> limit) {
  Engine engine(g, options);
  Result<PreparedQuery> q = engine.Prepare(query);
  EXPECT_TRUE(q.ok()) << query << " -> " << q.status();
  std::vector<std::string> rows;
  if (!q.ok()) return rows;
  Result<Cursor> cursor = q->Open({}, limit);
  EXPECT_TRUE(cursor.ok()) << cursor.status();
  if (!cursor.ok()) return rows;
  RowView view;
  while (true) {
    Result<bool> more = cursor->Next(&view);
    EXPECT_TRUE(more.ok()) << query << " -> " << more.status();
    if (!more.ok() || !*more) break;
    rows.push_back(CanonRow(*view.row, *view.context, g));
  }
  return rows;
}

/// The differential workloads: single fixed-length declarations exercise
/// the chunked streaming mode; quantified/multi-declaration/selector
/// patterns exercise the lazy-batch mode.
const char* kQueries[] = {
    // Stream mode: fixed length 1 and 2, inline predicates, postfilter.
    "MATCH (x:Account WHERE x.isBlocked='no')-[t:Transfer]->(y:Account)",
    "MATCH (a:Account)-[t:Transfer]->(b:Account)-[u:Transfer]->(c:Account) "
    "WHERE t.amount <= u.amount",
    // Stream mode: fixed-count quantifier.
    "MATCH (x:Account)-[:Transfer]->{2,2}(y:Account)",
    // Batch mode: variable-length quantifier with restrictor.
    "MATCH TRAIL (x:Account WHERE x.isBlocked='yes')-[:Transfer]->{1,3}"
    "(y:Account WHERE y.isBlocked='yes')",
    // Batch mode: selector.
    "MATCH ANY SHORTEST (x:Account WHERE x.isBlocked='no')-[:Transfer]->+"
    "(y:Account WHERE y.isBlocked='yes')",
    // Batch mode: two joined declarations.
    "MATCH (x:Account)-[:isLocatedIn]->(c:City WHERE c.name='Ankh-Morpork')"
    "<-[:isLocatedIn]-(y:Account), (x)-[t:Transfer]->(y)",
};

PropertyGraph MatrixGraph() {
  FraudGraphOptions options;
  options.num_accounts = 60;
  options.num_cities = 2;
  return MakeFraudGraph(options);
}

TEST(CursorTest, StreamedRowsByteIdenticalAcrossMatrix) {
  PropertyGraph g = MatrixGraph();
  for (const char* query : kQueries) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      for (bool csr : {true, false}) {
        for (bool planner : {true, false}) {
          EngineOptions options;
          options.num_threads = threads;
          options.use_csr = csr;
          options.use_planner = planner;
          options.matcher.min_seeds_per_shard = 1;  // Force real sharding.
          std::vector<std::string> oracle = MatchRows(g, query, options);
          // Full stream == full materialization.
          EXPECT_EQ(CursorRows(g, query, options, std::nullopt), oracle)
              << query << " threads=" << threads << " csr=" << csr
              << " planner=" << planner;
          // Limited stream == prefix of the materialization.
          uint64_t limit = 3;
          std::vector<std::string> expected(
              oracle.begin(),
              oracle.begin() +
                  static_cast<long>(std::min<size_t>(limit, oracle.size())));
          EXPECT_EQ(CursorRows(g, query, options, limit), expected)
              << query << " threads=" << threads << " csr=" << csr
              << " planner=" << planner << " limit";
        }
      }
    }
  }
}

TEST(CursorTest, PaperGraphStreamEqualsOracle) {
  PropertyGraph g = BuildPaperGraph();
  for (const char* query :
       {"MATCH (x:Account)-[t:Transfer]->(y:Account)",
        "MATCH (x)~[h:hasPhone]~(p:Phone)",
        "MATCH (x:Account)-[t:Transfer]->(y) WHERE t.amount > 8M"}) {
    EngineOptions options;
    EXPECT_EQ(CursorRows(g, query, options, std::nullopt),
              MatchRows(g, query, options))
        << query;
  }
}

TEST(CursorTest, HitLimitIsDistinctFromTruncation) {
  PropertyGraph g = MatrixGraph();
  EngineOptions options;
  Engine engine(g, options);
  Result<PreparedQuery> q = engine.Prepare(
      "MATCH (x:Account)-[t:Transfer]->(y:Account)");
  ASSERT_TRUE(q.ok()) << q.status();

  Result<Cursor> cursor = q->Open({}, uint64_t{2});
  ASSERT_TRUE(cursor.ok());
  RowView view;
  size_t n = 0;
  while (true) {
    Result<bool> more = cursor->Next(&view);
    ASSERT_TRUE(more.ok()) << more.status();
    if (!*more) break;
    ++n;
  }
  EXPECT_EQ(n, 2u);
  EXPECT_TRUE(cursor->hit_limit());
  EXPECT_FALSE(cursor->truncated());
  EXPECT_EQ(cursor->rows_emitted(), 2u);
}

TEST(CursorTest, BudgetExhaustionTruncatesWhenPolicyAllows) {
  PropertyGraph g = MatrixGraph();

  // kError (default): the stream fails with kResourceExhausted.
  {
    EngineOptions options;
    options.matcher.max_steps = 50;
    Engine engine(g, options);
    Result<PreparedQuery> q = engine.Prepare(
        "MATCH (x:Account)-[t:Transfer]->(y:Account)");
    ASSERT_TRUE(q.ok()) << q.status();
    Result<Cursor> cursor = q->Open();
    ASSERT_TRUE(cursor.ok());
    RowView view;
    Status error = Status::OK();
    while (true) {
      Result<bool> more = cursor->Next(&view);
      if (!more.ok()) {
        error = more.status();
        break;
      }
      if (!*more) break;
    }
    EXPECT_EQ(error.code(), StatusCode::kResourceExhausted);
    // Errors are sticky.
    Result<bool> again = cursor->Next(&view);
    EXPECT_FALSE(again.ok());
  }

  // kTruncate: the stream ends cleanly with the truncation flagged — on
  // the cursor, in the metrics, and not mistaken for a LIMIT stop.
  {
    EngineMetrics metrics;
    EngineOptions options;
    options.matcher.max_steps = 50;
    options.on_budget = EngineOptions::BudgetPolicy::kTruncate;
    options.metrics = &metrics;
    Engine engine(g, options);
    Result<PreparedQuery> q = engine.Prepare(
        "MATCH (x:Account)-[t:Transfer]->(y:Account)");
    ASSERT_TRUE(q.ok()) << q.status();
    Result<Cursor> cursor = q->Open();
    ASSERT_TRUE(cursor.ok());
    RowView view;
    while (true) {
      Result<bool> more = cursor->Next(&view);
      ASSERT_TRUE(more.ok()) << more.status();
      if (!*more) break;
    }
    EXPECT_TRUE(cursor->truncated());
    EXPECT_FALSE(cursor->hit_limit());
    EXPECT_EQ(metrics.budget_truncated, 1u);
  }
}

TEST(CursorTest, MatchOutputTruncationFlagUnderPolicy) {
  PropertyGraph g = MatrixGraph();
  EngineMetrics metrics;
  EngineOptions options;
  options.matcher.max_matches = 5;
  options.on_budget = EngineOptions::BudgetPolicy::kTruncate;
  options.metrics = &metrics;
  Engine engine(g, options);
  Result<MatchOutput> out =
      engine.Match("MATCH (x:Account)-[t:Transfer]->(y:Account)");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->truncated);
  EXPECT_EQ(metrics.budget_truncated, 1u);
  EXPECT_LE(out->rows.size(), 5u);
  EXPECT_NE(out->rows.size(), 0u);

  // The same overflow under the default policy stays an error — the
  // historical contract.
  EngineOptions error_options;
  error_options.matcher.max_matches = 5;
  Engine error_engine(g, error_options);
  Result<MatchOutput> error_out =
      error_engine.Match("MATCH (x:Account)-[t:Transfer]->(y:Account)");
  EXPECT_FALSE(error_out.ok());
  EXPECT_EQ(error_out.status().code(), StatusCode::kResourceExhausted);
}

TEST(CursorTest, MidStreamAbandonmentLeaksNothing) {
  PropertyGraph g = MatrixGraph();
  EngineOptions options;
  const std::string query =
      "MATCH (x:Account)-[t:Transfer]->(y:Account)";
  std::vector<std::string> oracle = MatchRows(g, query, options);

  Engine engine(g, options);
  Result<PreparedQuery> q = engine.Prepare(query);
  ASSERT_TRUE(q.ok()) << q.status();
  {
    // Pull one row, then drop the cursor: its budget dies with it.
    Result<Cursor> cursor = q->Open();
    ASSERT_TRUE(cursor.ok());
    RowView view;
    Result<bool> more = cursor->Next(&view);
    ASSERT_TRUE(more.ok());
    EXPECT_TRUE(*more);
  }
  // A fresh stream from the same prepared query starts a fresh budget and
  // reproduces the full oracle sequence.
  EXPECT_EQ(CursorRows(g, query, options, std::nullopt), oracle);
}

TEST(CursorTest, RangeForIteration) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<PreparedQuery> q =
      engine.Prepare("MATCH (x:Account)-[t:Transfer]->(y:Account)");
  ASSERT_TRUE(q.ok()) << q.status();
  Result<Cursor> cursor = q->Open();
  ASSERT_TRUE(cursor.ok());
  size_t n = 0;
  for (const RowView& view : *cursor) {
    EXPECT_NE(view.row, nullptr);
    EXPECT_NE(view.context, nullptr);
    ++n;
  }
  EXPECT_TRUE(cursor->status().ok());
  EXPECT_EQ(n, 8u);  // Eight Transfer edges in Figure 1.
}

TEST(CursorTest, DrainMatchesOracle) {
  PropertyGraph g = BuildPaperGraph();
  EngineOptions options;
  const std::string query =
      "MATCH (x:Account)-[t:Transfer]->(y:Account) WHERE t.amount >= 9M";
  Engine engine(g, options);
  Result<MatchOutput> oracle = engine.Match(query);
  ASSERT_TRUE(oracle.ok());

  Result<PreparedQuery> q = engine.Prepare(query);
  ASSERT_TRUE(q.ok());
  Result<Cursor> cursor = q->Open();
  ASSERT_TRUE(cursor.ok());
  Result<MatchOutput> drained = cursor->Drain();
  ASSERT_TRUE(drained.ok()) << drained.status();
  ASSERT_EQ(drained->rows.size(), oracle->rows.size());
  for (size_t i = 0; i < drained->rows.size(); ++i) {
    EXPECT_EQ(CanonRow(drained->rows[i], *drained, g),
              CanonRow(oracle->rows[i], *oracle, g));
  }
  EXPECT_FALSE(drained->truncated);
}

TEST(CursorTest, SessionLimitStopsEarly) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddGraph("fraud", MatrixGraph()).ok());

  EngineMetrics metrics;
  EngineOptions options;
  options.metrics = &metrics;
  Session session(catalog, options);
  ASSERT_TRUE(session.UseGraph("fraud").ok());

  Result<Table> full = session.Execute(
      "MATCH (x:Account)-[t:Transfer]->(y:Account) RETURN x, y");
  ASSERT_TRUE(full.ok()) << full.status();
  size_t full_steps = metrics.matcher_steps;
  ASSERT_GT(full->num_rows(), 3u);

  Result<Table> limited = session.Execute(
      "MATCH (x:Account)-[t:Transfer]->(y:Account) RETURN x, y LIMIT 3");
  ASSERT_TRUE(limited.ok()) << limited.status();
  EXPECT_EQ(limited->num_rows(), 3u);
  // The limit pushed into the cursor: matching stopped early.
  EXPECT_LT(metrics.matcher_steps, full_steps);
  // And the limited rows are the prefix of the full table.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(limited->rows()[i], full->rows()[i]);
  }
}

TEST(CursorTest, SessionDistinctLimitSelectsFromSortedDistinct) {
  // DISTINCT output is sorted (DeduplicateRows parity with the
  // materialized path); LIMIT takes the first rows of that sorted set.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddGraph("bank", BuildPaperGraph()).ok());
  Session session(catalog);
  ASSERT_TRUE(session.UseGraph("bank").ok());

  Result<Table> all = session.Execute(
      "MATCH (x:Account)-[t:Transfer]->(y:Account) RETURN DISTINCT x");
  ASSERT_TRUE(all.ok()) << all.status();
  Result<Table> limited = session.Execute(
      "MATCH (x:Account)-[t:Transfer]->(y:Account) RETURN DISTINCT x "
      "LIMIT 2");
  ASSERT_TRUE(limited.ok()) << limited.status();
  ASSERT_EQ(limited->num_rows(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(limited->rows()[i], all->rows()[i]);
  }
}

TEST(CursorTest, GraphTableLimitOption) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddGraph("fraud", MatrixGraph()).ok());

  GraphTableQuery query;
  query.graph = "fraud";
  query.match = "MATCH (x:Account)-[t:Transfer]->(y:Account)";
  query.columns = "x.owner AS sender, y.owner AS receiver";
  Result<Table> full = GraphTable(catalog, query);
  ASSERT_TRUE(full.ok()) << full.status();

  query.limit = 4;
  Result<Table> limited = GraphTable(catalog, query);
  ASSERT_TRUE(limited.ok()) << limited.status();
  ASSERT_EQ(limited->num_rows(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(limited->rows()[i], full->rows()[i]);
  }
}

}  // namespace
}  // namespace gpml
