#include "planner/plan_cache.h"

#include "ast/print.h"

namespace gpml {
namespace planner {

std::string PlanFingerprint(const GraphPattern& pattern, bool use_planner,
                            bool use_seed_index, bool use_analysis) {
  // Print covers mode, every declaration (selector, restrictor, path var,
  // pattern) and the postfilter WHERE; parse(Print(x)) == x structurally, so
  // the rendering is injective on parseable patterns.
  std::string fp = Print(pattern);
  fp += use_planner ? "|planner=on" : "|planner=off";
  if (!use_seed_index) fp += "|seed_index=off";
  if (!use_analysis) fp += "|analysis=off";
  return fp;
}

std::shared_ptr<const CachedPlan> LookupPlan(const PropertyGraph& g,
                                             const std::string& fingerprint,
                                             obs::MetricsRegistry* registry) {
  std::shared_ptr<const PlanCache> cache = g.plan_cache();
  std::shared_ptr<const CachedPlan> entry;
  if (cache != nullptr && cache->graph_token == g.identity_token()) {
    auto it = cache->entries.find(fingerprint);
    if (it != cache->entries.end()) entry = it->second;
  }
  if (registry != nullptr) {
    registry
        ->GetCounter(entry != nullptr ? "gpml_plan_cache_hits_total"
                                      : "gpml_plan_cache_misses_total")
        ->Increment();
  }
  return entry;
}

void StorePlan(const PropertyGraph& g, const std::string& fingerprint,
               std::shared_ptr<const CachedPlan> entry) {
  std::shared_ptr<const PlanCache> cur = g.plan_cache();
  auto next = std::make_shared<PlanCache>();
  next->graph_token = g.identity_token();
  if (cur != nullptr && cur->graph_token == g.identity_token() &&
      cur->entries.size() < kPlanCacheMaxEntries) {
    next->entries = cur->entries;  // Shallow: values are shared immutables.
  }
  next->entries[fingerprint] = std::move(entry);
  g.set_plan_cache(std::move(next));
}

}  // namespace planner
}  // namespace gpml
