// E9 (Figure 6): quantifier cost — fixed {k}, ranged {1,k}, and unbounded
// (under TRAIL) repetition as k grows, on cyclic and acyclic topologies.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace gpml {
namespace {

using bench::RunOrDie;

void BM_Fig6_FixedRepetitionOnChain(benchmark::State& state) {
  static PropertyGraph* g = new PropertyGraph(MakeChainGraph(3000));
  std::string query = "MATCH (a)-[:Transfer]->{" +
                      std::to_string(state.range(0)) + "}(b)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(*g, query));
  }
}
BENCHMARK(BM_Fig6_FixedRepetitionOnChain)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Fig6_RangeOnChain(benchmark::State& state) {
  static PropertyGraph* g = new PropertyGraph(MakeChainGraph(3000));
  std::string query = "MATCH (a)-[:Transfer]->{1," +
                      std::to_string(state.range(0)) + "}(b)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(*g, query));
  }
}
BENCHMARK(BM_Fig6_RangeOnChain)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_Fig6_RangeOnCycle(benchmark::State& state) {
  // Cycles make walk counts grow with the bound.
  static PropertyGraph* g = new PropertyGraph(MakeCycleGraph(64));
  std::string query = "MATCH (a WHERE a.owner='u0')-[:Transfer]->{1," +
                      std::to_string(state.range(0)) + "}(b)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(*g, query));
  }
}
BENCHMARK(BM_Fig6_RangeOnCycle)->Arg(8)->Arg(32)->Arg(128);

void BM_Fig6_UnboundedStarUnderTrail(benchmark::State& state) {
  static PropertyGraph* g = new PropertyGraph(MakeCycleGraph(
      static_cast<int>(64)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunOrDie(*g,
                 "MATCH TRAIL (a WHERE a.owner='u0')-[:Transfer]->*(b)"));
  }
}
BENCHMARK(BM_Fig6_UnboundedStarUnderTrail);

void BM_Fig6_GroupAggregatePostfilter(benchmark::State& state) {
  // §4.4's SUM(t.amount) postfilter over group bindings.
  static PropertyGraph* g = new PropertyGraph([] {
    FraudGraphOptions options;
    options.num_accounts = 500;
    return MakeFraudGraph(options);
  }());
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(
        *g,
        "MATCH (a:Account) [()-[t:Transfer WHERE t.amount>1M]->()]{2,3} "
        "(b:Account) WHERE SUM(t.amount)>10M"));
  }
}
BENCHMARK(BM_Fig6_GroupAggregatePostfilter)->Unit(benchmark::kMillisecond);

void BM_Fig6_PerIterationPrefilter(benchmark::State& state) {
  // Prefilters prune during the walk: cheaper than post-hoc filtering.
  static PropertyGraph* g = new PropertyGraph([] {
    FraudGraphOptions options;
    options.num_accounts = 500;
    return MakeFraudGraph(options);
  }());
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(
        *g,
        "MATCH (a:Account) [()-[t:Transfer WHERE t.amount>9M]->()]{2,3} "
        "(b:Account)"));
  }
}
BENCHMARK(BM_Fig6_PerIterationPrefilter)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gpml
