#ifndef GPML_SERVER_JSON_H_
#define GPML_SERVER_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace gpml {
namespace server {

/// A parsed JSON document node — the request/response model of the wire
/// protocol (docs/server.md). Deliberately a plain tagged struct rather
/// than a clever variant: protocol handlers read a handful of fields per
/// request, and tests want to poke at the tree directly.
///
/// Every node remembers the half-open byte range [begin, end) it was
/// parsed from, so callers can recover the exact original bytes of a
/// subtree (`raw span`). The client library uses this to hand back result
/// rows byte-for-byte as the server serialized them — re-serialization
/// could legally reorder or reformat, which would break the
/// byte-identity contract the server bench enforces.
struct JsonValue {
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_v = false;
  int64_t int_v = 0;        // Valid when type == kInt.
  double double_v = 0;      // Valid when type == kDouble.
  std::string string_v;     // Valid when type == kString (decoded, UTF-8).
  std::vector<JsonValue> array_v;
  /// Members in document order (duplicate keys are kept; Find returns the
  /// first, matching common parser behavior).
  std::vector<std::pair<std::string, JsonValue>> object_v;

  size_t begin = 0;  // Byte offset of the node's first character.
  size_t end = 0;    // One past the node's last character.

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_int() const { return type == Type::kInt; }
  bool is_double() const { return type == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Numeric payload widened to double (requires is_number()).
  double AsDouble() const {
    return is_int() ? static_cast<double>(int_v) : double_v;
  }

  /// First member named `key`, or nullptr (requires nothing: non-objects
  /// simply have no members).
  const JsonValue* Find(const std::string& key) const;

  /// The node's original bytes inside the document it was parsed from.
  std::string RawSpan(const std::string& document) const {
    return document.substr(begin, end - begin);
  }

  /// Canonical re-serialization (object member order preserved, strings
  /// escaped with gpml::JsonEscape, doubles with a trailing ".0" when
  /// integral). Used by tests for round-trips and by the server to embed
  /// parsed values; NOT guaranteed to reproduce input bytes — RawSpan does
  /// that.
  std::string Serialize() const;
};

/// Parses one JSON document. Strict where the wire protocol needs it:
///  * the whole input must be consumed (trailing non-whitespace is an
///    error), so one request line is exactly one document;
///  * \uXXXX escapes decode to UTF-8, surrogate pairs combine, and a lone
///    surrogate is an error (never emitted by the hardened JsonEscape);
///  * raw control characters inside strings are an error (JSON requires
///    escapes), and raw bytes must be valid UTF-8;
///  * numbers without '.', 'e' or 'E' that fit int64 parse as kInt, all
///    others as kDouble — mirroring the Value encoding in protocol.h, so
///    Int/Double survive a round trip;
///  * nesting is capped (kMaxDepth) so hostile input cannot overflow the
///    stack.
/// Errors are kInvalidArgument with a byte offset in the message.
Result<JsonValue> ParseJson(const std::string& text);

/// Maximum nesting depth ParseJson accepts.
inline constexpr int kJsonMaxDepth = 64;

}  // namespace server
}  // namespace gpml

#endif  // GPML_SERVER_JSON_H_
