#include "gql/session.h"

#include "gql/result_table.h"
#include "parser/parser.h"

namespace gpml {

Status Session::UseGraph(const std::string& name) {
  GPML_ASSIGN_OR_RETURN(graph_, catalog_.GetGraph(name));
  return Status::OK();
}

Result<Table> Session::Execute(const std::string& statement) const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("no graph selected; call UseGraph first");
  }
  GPML_ASSIGN_OR_RETURN(MatchStatement stmt, ParseStatement(statement));
  Engine engine(*graph_, options_);
  GPML_ASSIGN_OR_RETURN(MatchOutput output, engine.Match(stmt.pattern));
  if (!stmt.has_return) {
    return ProjectAllVariables(output, *graph_);
  }
  return ProjectRows(output, *graph_, stmt.return_items,
                     stmt.return_distinct);
}

Result<MatchOutput> Session::Match(const std::string& match_text) const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("no graph selected; call UseGraph first");
  }
  Engine engine(*graph_, options_);
  return engine.Match(match_text);
}

}  // namespace gpml
