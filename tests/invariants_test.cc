// Property-style invariant sweeps over randomized graphs (TEST_P): the
// algebraic laws the standard implies, checked independently of any
// specific expected result. Complements differential_test.cc (which checks
// evaluator agreement) with *internal* consistency of the production
// engine.

#include <set>
#include <gtest/gtest.h>

#include "eval/engine.h"
#include "graph/generator.h"
#include "test_util.h"

namespace gpml {
namespace {

class InvariantTest : public ::testing::TestWithParam<int> {
 protected:
  InvariantTest()
      : g_(MakeRandomGraph(12, 30, 3, 0.25,
                           static_cast<uint64_t>(GetParam()))) {}

  std::vector<PathBinding> Bindings(const std::string& query) {
    Engine engine(g_);
    Result<MatchOutput> out = engine.Match(query);
    EXPECT_TRUE(out.ok()) << query << " -> " << out.status();
    std::vector<PathBinding> result;
    if (!out.ok()) return result;
    for (const ResultRow& row : out->rows) {
      result.push_back(*row.bindings[0]);
    }
    return result;
  }

  PropertyGraph g_;
};

TEST_P(InvariantTest, TrailResultsAreTrails) {
  for (const PathBinding& pb : Bindings("MATCH TRAIL (x)-[e]->*(y)")) {
    EXPECT_TRUE(pb.path.IsTrail()) << pb.path.ToString(g_);
  }
}

TEST_P(InvariantTest, AcyclicResultsAreAcyclic) {
  for (const PathBinding& pb : Bindings("MATCH ACYCLIC (x)-[e]->*(y)")) {
    EXPECT_TRUE(pb.path.IsAcyclic()) << pb.path.ToString(g_);
  }
}

TEST_P(InvariantTest, SimpleResultsAreSimple) {
  for (const PathBinding& pb : Bindings("MATCH SIMPLE (x)-[e]->*(y)")) {
    EXPECT_TRUE(pb.path.IsSimple()) << pb.path.ToString(g_);
  }
}

TEST_P(InvariantTest, AcyclicSubsetOfTrailSubsetOfAll) {
  // ACYCLIC paths ⊆ TRAIL paths (over the same pattern).
  std::set<std::string> trails;
  for (const PathBinding& pb : Bindings("MATCH TRAIL (x)-[e]->*(y)")) {
    trails.insert(pb.path.ToString(g_));
  }
  for (const PathBinding& pb : Bindings("MATCH ACYCLIC (x)-[e]->*(y)")) {
    EXPECT_TRUE(trails.count(pb.path.ToString(g_)) > 0)
        << pb.path.ToString(g_);
  }
}

TEST_P(InvariantTest, AllShortestSubsetAndMinimal) {
  // Every ALL SHORTEST result is a TRAIL-enumerable path? Not necessarily
  // (shortest may repeat edges only when beneficial — it never is for
  // shortest). Shortest paths never repeat an edge, so they are trails.
  std::map<std::pair<NodeId, NodeId>, uint32_t> min_len;
  std::vector<PathBinding> shortest =
      Bindings("MATCH ALL SHORTEST (x)-[e:L0]->*(y)");
  for (const PathBinding& pb : shortest) {
    auto key = std::make_pair(pb.path.Start(), pb.path.End());
    auto it = min_len.find(key);
    if (it == min_len.end()) {
      min_len[key] = static_cast<uint32_t>(pb.path.Length());
    } else {
      EXPECT_EQ(it->second, pb.path.Length())
          << "two different lengths in one ALL SHORTEST partition";
    }
  }
  // Minimality: TRAIL enumeration can produce no shorter path.
  for (const PathBinding& pb : Bindings("MATCH TRAIL (x)-[e:L0]->*(y)")) {
    auto key = std::make_pair(pb.path.Start(), pb.path.End());
    auto it = min_len.find(key);
    ASSERT_NE(it, min_len.end())
        << "partition found by TRAIL but not by ALL SHORTEST";
    EXPECT_LE(it->second, pb.path.Length());
  }
}

TEST_P(InvariantTest, AnyShortestPicksOnePerPartition) {
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const PathBinding& pb :
       Bindings("MATCH ANY SHORTEST (x)-[e]->*(y)")) {
    auto key = std::make_pair(pb.path.Start(), pb.path.End());
    EXPECT_TRUE(seen.insert(key).second)
        << "two ANY SHORTEST results in one partition";
  }
}

TEST_P(InvariantTest, SelectorNeverCreatesResults) {
  // Adding ANY SHORTEST to a query with matches keeps ≥1 per partition and
  // adds none (§5.1's selector-vs-restrictor observation, half 1).
  std::set<std::pair<NodeId, NodeId>> all_partitions;
  for (const PathBinding& pb : Bindings("MATCH TRAIL (x)-[e:L1]->*(y)")) {
    all_partitions.insert({pb.path.Start(), pb.path.End()});
  }
  std::set<std::pair<NodeId, NodeId>> selected_partitions;
  for (const PathBinding& pb :
       Bindings("MATCH ANY SHORTEST (x)-[e:L1]->*(y)")) {
    selected_partitions.insert({pb.path.Start(), pb.path.End()});
  }
  EXPECT_EQ(all_partitions, selected_partitions)
      << "selectors preserve exactly the satisfiable partitions";
}

TEST_P(InvariantTest, ShortestKGroupContainsAllShortest) {
  std::set<std::string> k1;
  for (const PathBinding& pb :
       Bindings("MATCH SHORTEST 1 GROUP (x)-[e:L0]->*(y)")) {
    k1.insert(pb.path.ToString(g_));
  }
  std::set<std::string> all_shortest;
  for (const PathBinding& pb :
       Bindings("MATCH ALL SHORTEST (x)-[e:L0]->*(y)")) {
    all_shortest.insert(pb.path.ToString(g_));
  }
  EXPECT_EQ(k1, all_shortest) << "SHORTEST 1 GROUP ≡ ALL SHORTEST (Fig. 8)";
}

TEST_P(InvariantTest, UnionIsDeduplicatedUnionOfBranches) {
  // Results of A | B as a path set == path set of A plus path set of B.
  std::set<std::string> left, right, both;
  for (const PathBinding& pb : Bindings("MATCH (x)-[e:L0]->(y)")) {
    left.insert(pb.path.ToString(g_));
  }
  for (const PathBinding& pb : Bindings("MATCH (x)-[e:L1]->(y)")) {
    right.insert(pb.path.ToString(g_));
  }
  for (const PathBinding& pb :
       Bindings("MATCH (x)[-[e:L0]->(y) | -[e:L1]->(y)]")) {
    both.insert(pb.path.ToString(g_));
  }
  std::set<std::string> expected = left;
  expected.insert(right.begin(), right.end());
  EXPECT_EQ(both, expected);
}

TEST_P(InvariantTest, AlternationCountIsSumOfBranches) {
  size_t left = Bindings("MATCH (x)-[e:L0]->(y)").size();
  size_t right = Bindings("MATCH (x)-[e:L1]->(y)").size();
  size_t both =
      Bindings("MATCH (x)[-[e:L0]->(y) |+| -[e:L1]->(y)]").size();
  EXPECT_EQ(both, left + right);
}

TEST_P(InvariantTest, QuantifierRangeIsUnionOfExactCounts) {
  size_t ranged = Bindings("MATCH (x)-[:L0]->{1,3}(y)").size();
  std::set<std::string> distinct;
  for (int k = 1; k <= 3; ++k) {
    for (const PathBinding& pb :
         Bindings("MATCH (x)-[:L0]->{" + std::to_string(k) + "}(y)")) {
      distinct.insert(pb.path.ToString(g_));
    }
  }
  EXPECT_EQ(ranged, distinct.size());
}

TEST_P(InvariantTest, ReducedBindingsAreUniquePerQuery) {
  std::vector<PathBinding> bindings =
      Bindings("MATCH (x)[-[e:L0]->(y) | -[e:L0|L1]->(y)]");
  for (size_t i = 0; i < bindings.size(); ++i) {
    for (size_t j = i + 1; j < bindings.size(); ++j) {
      EXPECT_FALSE(bindings[i].SameReduced(bindings[j]))
          << "duplicate reduced binding survived deduplication";
    }
  }
}

TEST_P(InvariantTest, PostfilterIsSubset) {
  size_t unfiltered = Bindings("MATCH (x)-[e]->(y)").size();
  size_t filtered =
      Bindings("MATCH (x)-[e]->(y) WHERE e.w > 50").size();
  EXPECT_LE(filtered, unfiltered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace gpml
