#ifndef GPML_PARSER_PARSER_H_
#define GPML_PARSER_PARSER_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/result.h"

namespace gpml {

/// Parses a complete GPML statement:
///   MATCH <path decls> [WHERE <postfilter>] [RETURN [DISTINCT] <items>]
/// RETURN is the GQL host's projection (Figure 9); SQL/PGQ callers use
/// ParseGraphPattern + ParseColumns instead.
Result<MatchStatement> ParseStatement(const std::string& text);

/// Parses "MATCH ... [WHERE ...]" without a RETURN clause.
Result<GraphPattern> ParseGraphPattern(const std::string& text);

/// Parses a stand-alone expression (tests, COLUMNS items).
Result<ExprPtr> ParseExpression(const std::string& text);

/// Parses a COLUMNS list: "expr [AS alias] (',' expr [AS alias])*" — the
/// projection list of SQL/PGQ's GRAPH_TABLE.
Result<std::vector<ReturnItem>> ParseColumns(const std::string& text);

}  // namespace gpml

#endif  // GPML_PARSER_PARSER_H_
