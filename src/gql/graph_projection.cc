#include "gql/graph_projection.h"

#include <set>

#include "graph/graph_builder.h"

namespace gpml {

Result<PropertyGraph> ProjectGraph(const PropertyGraph& source,
                                   const MatchOutput& output) {
  std::set<NodeId> nodes;
  std::set<EdgeId> edges;
  for (const ResultRow& row : output.rows) {
    for (const auto& pb : row.bindings) {
      for (const ElementaryBinding& b : pb->reduced) {
        if (b.element.is_node()) {
          nodes.insert(b.element.id);
        } else {
          edges.insert(b.element.id);
        }
      }
    }
  }
  // Close over edge endpoints so the projection is a property graph.
  for (EdgeId e : edges) {
    nodes.insert(source.edge(e).u);
    nodes.insert(source.edge(e).v);
  }

  GraphBuilder builder;
  for (NodeId n : nodes) {
    const NodeData& nd = source.node(n);
    PropertyList props(nd.properties.begin(), nd.properties.end());
    builder.AddNode(nd.name, nd.labels, std::move(props));
  }
  for (EdgeId e : edges) {
    const EdgeData& ed = source.edge(e);
    PropertyList props(ed.properties.begin(), ed.properties.end());
    if (ed.directed) {
      builder.AddDirectedEdge(ed.name, source.node(ed.u).name,
                              source.node(ed.v).name, ed.labels,
                              std::move(props));
    } else {
      builder.AddUndirectedEdge(ed.name, source.node(ed.u).name,
                                source.node(ed.v).name, ed.labels,
                                std::move(props));
    }
  }
  return std::move(builder).Build();
}

}  // namespace gpml
