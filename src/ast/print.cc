#include "ast/print.h"

#include "common/strings.h"

namespace gpml {

namespace {

/// The `spec` of Figure 5: `var:labelExpr WHERE cond`, all parts optional.
std::string PrintSpec(const std::string& var, const LabelExprPtr& labels,
                      const ExprPtr& where) {
  std::string s = var;
  if (labels != nullptr) s += ":" + labels->ToString();
  if (where != nullptr) s += " WHERE " + where->ToString();
  return s;
}

std::string QuantifierSuffix(const PathElement& e) {
  if (e.kind == PathElement::Kind::kOptional) return "?";
  if (e.min == 0 && !e.max.has_value()) return "*";
  if (e.min == 1 && !e.max.has_value()) return "+";
  std::string s = "{" + std::to_string(e.min) + ",";
  if (e.max.has_value()) s += std::to_string(*e.max);
  s += "}";
  return s;
}

}  // namespace

std::string Print(const NodePattern& n) {
  return "(" + PrintSpec(n.var, n.labels, n.where) + ")";
}

std::string Print(const EdgePattern& e) {
  std::string spec = PrintSpec(e.var, e.labels, e.where);
  if (spec.empty()) {
    switch (e.orientation) {
      case EdgeOrientation::kLeft: return "<-";
      case EdgeOrientation::kUndirected: return "~";
      case EdgeOrientation::kRight: return "->";
      case EdgeOrientation::kLeftOrUndirected: return "<~";
      case EdgeOrientation::kUndirectedOrRight: return "~>";
      case EdgeOrientation::kLeftOrRight: return "<->";
      case EdgeOrientation::kAny: return "-";
    }
  }
  switch (e.orientation) {
    case EdgeOrientation::kLeft: return "<-[" + spec + "]-";
    case EdgeOrientation::kUndirected: return "~[" + spec + "]~";
    case EdgeOrientation::kRight: return "-[" + spec + "]->";
    case EdgeOrientation::kLeftOrUndirected: return "<~[" + spec + "]~";
    case EdgeOrientation::kUndirectedOrRight: return "~[" + spec + "]~>";
    case EdgeOrientation::kLeftOrRight: return "<-[" + spec + "]->";
    case EdgeOrientation::kAny: return "-[" + spec + "]-";
  }
  return "?";
}

std::string Print(const PathElement& e) {
  switch (e.kind) {
    case PathElement::Kind::kNode: return Print(e.node);
    case PathElement::Kind::kEdge: return Print(e.edge);
    case PathElement::Kind::kParen: {
      std::string s = "[";
      if (e.restrictor != Restrictor::kNone) {
        s += std::string(RestrictorName(e.restrictor)) + " ";
      }
      s += Print(*e.sub);
      if (e.where != nullptr) s += " WHERE " + e.where->ToString();
      return s + "]";
    }
    case PathElement::Kind::kQuantified:
    case PathElement::Kind::kOptional: {
      std::string inner;
      if (e.bare_edge) {
        // The quantifier was written directly on an edge pattern.
        inner = Print(*e.sub);
      } else {
        inner = "[";
        if (e.restrictor != Restrictor::kNone) {
          inner += std::string(RestrictorName(e.restrictor)) + " ";
        }
        inner += Print(*e.sub);
        if (e.where != nullptr) inner += " WHERE " + e.where->ToString();
        inner += "]";
      }
      return inner + QuantifierSuffix(e);
    }
  }
  return "?";
}

std::string Print(const PathPattern& p) {
  switch (p.kind) {
    case PathPattern::Kind::kConcat: {
      std::string s;
      for (const PathElement& e : p.elements) s += Print(e);
      return s;
    }
    case PathPattern::Kind::kUnion:
    case PathPattern::Kind::kAlternation: {
      const char* sep =
          p.kind == PathPattern::Kind::kUnion ? " | " : " |+| ";
      std::vector<std::string> parts;
      parts.reserve(p.alternatives.size());
      for (const auto& a : p.alternatives) parts.push_back(Print(*a));
      return Join(parts, sep);
    }
  }
  return "?";
}

std::string Print(const PathPatternDecl& d) {
  std::string s;
  if (!d.selector.IsNone()) s += d.selector.ToString() + " ";
  if (d.restrictor != Restrictor::kNone) {
    s += std::string(RestrictorName(d.restrictor)) + " ";
  }
  if (!d.path_var.empty()) s += d.path_var + " = ";
  s += Print(*d.pattern);
  return s;
}

std::string Print(const GraphPattern& g) {
  std::vector<std::string> parts;
  parts.reserve(g.paths.size());
  for (const auto& d : g.paths) parts.push_back(Print(d));
  std::string s = "MATCH ";
  if (g.mode != MatchMode::kRepeatableElements) {
    s += std::string(MatchModeName(g.mode)) + " ";
  }
  s += Join(parts, ", ");
  if (g.where != nullptr) s += " WHERE " + g.where->ToString();
  return s;
}

std::string Print(const MatchStatement& m) {
  std::string s = Print(m.pattern);
  if (m.has_return) {
    s += " RETURN ";
    if (m.return_distinct) s += "DISTINCT ";
    std::vector<std::string> items;
    items.reserve(m.return_items.size());
    for (const auto& it : m.return_items) {
      std::string item = it.expr->ToString();
      if (!it.alias.empty()) item += " AS " + it.alias;
      items.push_back(std::move(item));
    }
    s += Join(items, ", ");
    if (m.limit.has_value()) s += " LIMIT " + std::to_string(*m.limit);
  }
  return s;
}

}  // namespace gpml
