#include "obs/slow_query_log.h"

#include <algorithm>

namespace gpml {
namespace obs {

void SlowQueryLog::Add(SlowQueryRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.sequence = added_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowQueryRecord> out;
  out.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t SlowQueryLog::total_added() const {
  std::lock_guard<std::mutex> lock(mu_);
  return added_;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

SlowQueryLog& GlobalSlowQueryLog() {
  static SlowQueryLog* log = new SlowQueryLog();
  return *log;
}

}  // namespace obs
}  // namespace gpml
