#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "gql/json_export.h"

namespace gpml {
namespace server {

namespace {

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept { *this = std::move(other); }

Client& Client::operator=(Client&& other) noexcept {
  if (this == &other) return *this;
  Close();
  fd_ = other.fd_;
  other.fd_ = -1;
  hello_ = std::move(other.hello_);
  last_reason_ = std::move(other.last_reason_);
  read_buf_ = std::move(other.read_buf_);
  read_pos_ = other.read_pos_;
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Client> Client::Connect(const std::string& host, int port,
                               const std::string& tenant) {
  Client client;
  client.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (client.fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address '" + host +
                                   "' (numeric IPv4 expected)");
  }
  if (::connect(client.fd_, reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    return Status::Internal("connect to " + host + ":" +
                            std::to_string(port) + ": " +
                            std::strerror(errno));
  }
  std::string request = "{\"op\":\"hello\"";
  if (!tenant.empty()) {
    request += ",\"tenant\":\"" + JsonEscape(tenant) + "\"";
  }
  request += "}";
  GPML_ASSIGN_OR_RETURN(RawResponse response, client.Call(request));
  if (const JsonValue* v = response.parsed.Find("protocol");
      v != nullptr && v->is_int()) {
    client.hello_.protocol = static_cast<int>(v->int_v);
  }
  if (const JsonValue* v = response.parsed.Find("session");
      v != nullptr && v->is_int()) {
    client.hello_.session_id = static_cast<uint64_t>(v->int_v);
  }
  if (const JsonValue* v = response.parsed.Find("tenant");
      v != nullptr && v->is_string()) {
    client.hello_.tenant = v->string_v;
  }
  if (client.hello_.protocol != kProtocolVersion) {
    return Status::InvalidArgument(
        "server speaks protocol " + std::to_string(client.hello_.protocol) +
        ", this client needs " + std::to_string(kProtocolVersion));
  }
  return client;
}

Result<Client::RawResponse> Client::RoundTrip(
    const std::string& request_line) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  if (!SendAll(fd_, request_line + "\n")) {
    Close();
    return Status::Internal("connection lost while sending request");
  }
  // Read one response line (the server never pushes unsolicited data).
  while (true) {
    size_t nl = read_buf_.find('\n', read_pos_);
    if (nl != std::string::npos) {
      RawResponse response;
      response.raw.assign(read_buf_, read_pos_, nl - read_pos_);
      read_pos_ = nl + 1;
      if (read_pos_ >= (1u << 20)) {
        read_buf_.erase(0, read_pos_);
        read_pos_ = 0;
      }
      GPML_ASSIGN_OR_RETURN(response.parsed, ParseJson(response.raw));
      return response;
    }
    char chunk[65536];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      return Status::Internal("connection closed by server mid-response");
    }
    read_buf_.append(chunk, static_cast<size_t>(n));
  }
}

Result<Client::RawResponse> Client::Call(const std::string& request_line) {
  last_reason_.clear();
  GPML_ASSIGN_OR_RETURN(RawResponse response, RoundTrip(request_line));
  const JsonValue* ok = response.parsed.Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Status::Internal("malformed server response (no \"ok\" field): " +
                            response.raw);
  }
  if (!ok->bool_v) {
    const JsonValue* error = response.parsed.Find("error");
    if (error == nullptr) {
      return Status::Internal("error response without \"error\" object: " +
                              response.raw);
    }
    last_reason_ = ReasonFromWireError(*error);
    return StatusFromWireError(*error);
  }
  return response;
}

Status Client::Ping() { return Call("{\"op\":\"ping\"}").status(); }

Status Client::Bye() {
  Status status = Call("{\"op\":\"bye\"}").status();
  Close();
  return status;
}

Result<std::vector<std::string>> Client::ListGraphs() {
  GPML_ASSIGN_OR_RETURN(RawResponse response,
                        Call("{\"op\":\"list_graphs\"}"));
  std::vector<std::string> names;
  if (const JsonValue* graphs = response.parsed.Find("graphs");
      graphs != nullptr && graphs->is_array()) {
    for (const JsonValue& name : graphs->array_v) {
      if (name.is_string()) names.push_back(name.string_v);
    }
  }
  return names;
}

Result<bool> Client::LoadGraph(const std::string& name,
                               const std::string& kind,
                               const std::string& extra_fields) {
  std::string request = "{\"op\":\"load_graph\",\"name\":\"" +
                        JsonEscape(name) + "\",\"kind\":\"" +
                        JsonEscape(kind) + "\"";
  if (!extra_fields.empty()) request += "," + extra_fields;
  request += "}";
  GPML_ASSIGN_OR_RETURN(RawResponse response, Call(request));
  const JsonValue* created = response.parsed.Find("created");
  return created != nullptr && created->is_bool() && created->bool_v;
}

Status Client::UseGraph(const std::string& name) {
  return Call("{\"op\":\"use_graph\",\"graph\":\"" + JsonEscape(name) +
              "\"}")
      .status();
}

Result<Client::PreparedInfo> Client::Prepare(const std::string& query) {
  GPML_ASSIGN_OR_RETURN(RawResponse response,
                        Call("{\"op\":\"prepare\",\"query\":\"" +
                             JsonEscape(query) + "\"}"));
  PreparedInfo info;
  const JsonValue* stmt = response.parsed.Find("stmt");
  if (stmt == nullptr || !stmt->is_int()) {
    return Status::Internal("prepare response without \"stmt\" handle: " +
                            response.raw);
  }
  info.stmt = stmt->int_v;
  if (const JsonValue* params = response.parsed.Find("params");
      params != nullptr && params->is_array()) {
    for (const JsonValue& name : params->array_v) {
      if (name.is_string()) info.params.push_back(name.string_v);
    }
  }
  if (const JsonValue* v = response.parsed.Find("from_cache");
      v != nullptr && v->is_bool()) {
    info.from_cache = v->bool_v;
  }
  if (const JsonValue* v = response.parsed.Find("always_empty");
      v != nullptr && v->is_bool()) {
    info.always_empty = v->bool_v;
  }
  return info;
}

Status Client::CloseStatement(int64_t stmt) {
  return Call("{\"op\":\"close_stmt\",\"stmt\":" + std::to_string(stmt) + "}")
      .status();
}

Result<ExecuteResult> Client::DecodeRows(const RawResponse& response) {
  ExecuteResult result;
  const JsonValue* rows = response.parsed.Find("rows");
  if (rows != nullptr && rows->is_array()) {
    result.rows.reserve(rows->array_v.size());
    for (const JsonValue& row : rows->array_v) {
      // RawSpan hands back the server's bytes untouched — the transport
      // half of the byte-identity contract (re-serializing here could
      // legally reformat numbers and reorder nothing but still differ).
      result.rows.push_back(ClientRow{row.RawSpan(response.raw), row});
    }
  }
  if (const JsonValue* v = response.parsed.Find("truncated");
      v != nullptr && v->is_bool()) {
    result.truncated = v->bool_v;
  }
  if (const JsonValue* v = response.parsed.Find("hit_limit");
      v != nullptr && v->is_bool()) {
    result.hit_limit = v->bool_v;
  }
  if (const JsonValue* v = response.parsed.Find("done");
      v != nullptr && v->is_bool()) {
    result.done = v->bool_v;
  }
  return result;
}

Result<ExecuteResult> Client::Execute(int64_t stmt, const Params& params,
                                      std::optional<uint64_t> limit) {
  std::string request = "{\"op\":\"execute\",\"stmt\":" +
                        std::to_string(stmt) +
                        ",\"params\":" + ParamsToWireJson(params);
  if (limit.has_value()) {
    request += ",\"limit\":" + std::to_string(*limit);
  }
  request += "}";
  GPML_ASSIGN_OR_RETURN(RawResponse response, Call(request));
  return DecodeRows(response);
}

Result<int64_t> Client::Open(int64_t stmt, const Params& params,
                             std::optional<uint64_t> limit) {
  std::string request = "{\"op\":\"open\",\"stmt\":" + std::to_string(stmt) +
                        ",\"params\":" + ParamsToWireJson(params);
  if (limit.has_value()) {
    request += ",\"limit\":" + std::to_string(*limit);
  }
  request += "}";
  GPML_ASSIGN_OR_RETURN(RawResponse response, Call(request));
  const JsonValue* cursor = response.parsed.Find("cursor");
  if (cursor == nullptr || !cursor->is_int()) {
    return Status::Internal("open response without \"cursor\" handle: " +
                            response.raw);
  }
  return cursor->int_v;
}

Result<ExecuteResult> Client::Fetch(int64_t cursor, int64_t max_rows) {
  GPML_ASSIGN_OR_RETURN(
      RawResponse response,
      Call("{\"op\":\"fetch\",\"cursor\":" + std::to_string(cursor) +
           ",\"max_rows\":" + std::to_string(max_rows) + "}"));
  return DecodeRows(response);
}

Status Client::CloseCursor(int64_t cursor) {
  return Call("{\"op\":\"close_cursor\",\"cursor\":" +
              std::to_string(cursor) + "}")
      .status();
}

Result<std::string> Client::Explain(const std::string& query) {
  GPML_ASSIGN_OR_RETURN(RawResponse response,
                        Call("{\"op\":\"explain\",\"query\":\"" +
                             JsonEscape(query) + "\"}"));
  const JsonValue* plan = response.parsed.Find("plan");
  if (plan == nullptr || !plan->is_string()) {
    return Status::Internal("explain response without \"plan\": " +
                            response.raw);
  }
  return plan->string_v;
}

Result<std::string> Client::Metrics() {
  GPML_ASSIGN_OR_RETURN(RawResponse response, Call("{\"op\":\"metrics\"}"));
  const JsonValue* text = response.parsed.Find("text");
  if (text == nullptr || !text->is_string()) {
    return Status::Internal("metrics response without \"text\": " +
                            response.raw);
  }
  return text->string_v;
}

Result<std::string> Client::SlowQueries(const std::string& graph) {
  std::string request = "{\"op\":\"slow_queries\"";
  if (!graph.empty()) {
    request += ",\"graph\":\"" + JsonEscape(graph) + "\"";
  }
  request += "}";
  GPML_ASSIGN_OR_RETURN(RawResponse response, Call(request));
  const JsonValue* records = response.parsed.Find("records");
  if (records == nullptr || !records->is_array()) {
    return Status::Internal("slow_queries response without \"records\": " +
                            response.raw);
  }
  return records->RawSpan(response.raw);
}

Result<std::string> Client::QueryStats(const std::string& graph,
                                       const std::string& tenant) {
  std::string request = "{\"op\":\"query_stats\"";
  if (!graph.empty()) {
    request += ",\"graph\":\"" + JsonEscape(graph) + "\"";
  }
  if (!tenant.empty()) {
    request += ",\"tenant\":\"" + JsonEscape(tenant) + "\"";
  }
  request += "}";
  GPML_ASSIGN_OR_RETURN(RawResponse response, Call(request));
  const JsonValue* entries = response.parsed.Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return Status::Internal("query_stats response without \"entries\": " +
                            response.raw);
  }
  return entries->RawSpan(response.raw);
}

Status Client::DebugSleep(int64_t ms) {
  return Call("{\"op\":\"debug_sleep\",\"ms\":" + std::to_string(ms) + "}")
      .status();
}

}  // namespace server
}  // namespace gpml
