// E14 (Figure 8): selector cost on many-shortest-paths topologies. The
// shape: ANY SHORTEST is a plain product BFS (cheapest); ALL SHORTEST pays
// for enumerating every shortest path (2^k on diamond chains); SHORTEST k
// GROUP grows with the retained length groups.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace gpml {
namespace {

using bench::RunOrDie;

void RunSelector(benchmark::State& state, const char* selector,
                 int diamonds) {
  PropertyGraph g = MakeDiamondChain(diamonds);
  std::string query = std::string("MATCH ") + selector +
                      " p = (a WHERE a.owner='s0')-[:Transfer]->*"
                      "(b WHERE b.owner='s" + std::to_string(diamonds) +
                      "')";
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunOrDie(g, query);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_Fig8_AnyShortest(benchmark::State& s) {
  RunSelector(s, "ANY SHORTEST", static_cast<int>(s.range(0)));
}
void BM_Fig8_AllShortest(benchmark::State& s) {
  RunSelector(s, "ALL SHORTEST", static_cast<int>(s.range(0)));
}
void BM_Fig8_Any(benchmark::State& s) {
  RunSelector(s, "ANY", static_cast<int>(s.range(0)));
}
void BM_Fig8_Any5(benchmark::State& s) {
  RunSelector(s, "ANY 5", static_cast<int>(s.range(0)));
}
void BM_Fig8_Shortest5(benchmark::State& s) {
  RunSelector(s, "SHORTEST 5", static_cast<int>(s.range(0)));
}
void BM_Fig8_Shortest2Group(benchmark::State& s) {
  RunSelector(s, "SHORTEST 2 GROUP", static_cast<int>(s.range(0)));
}

BENCHMARK(BM_Fig8_AnyShortest)->Arg(4)->Arg(8)->Arg(12);
BENCHMARK(BM_Fig8_AllShortest)->Arg(4)->Arg(8)->Arg(12)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_Fig8_Any)->Arg(4)->Arg(8)->Arg(12);
BENCHMARK(BM_Fig8_Any5)->Arg(4)->Arg(8)->Arg(12);
BENCHMARK(BM_Fig8_Shortest5)->Arg(4)->Arg(8)->Arg(12);
BENCHMARK(BM_Fig8_Shortest2Group)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_Fig8_ShortestOnGrid(benchmark::State& state) {
  // C(2n-2, n-1) shortest corner-to-corner paths on an n×n grid.
  int n = static_cast<int>(state.range(0));
  PropertyGraph g = MakeGridGraph(n, n);
  std::string query =
      "MATCH ALL SHORTEST p = (a WHERE a.owner='u0')-[:Transfer]->*"
      "(b WHERE b.owner='u" + std::to_string(n * n - 1) + "')";
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunOrDie(g, query);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["paths"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig8_ShortestOnGrid)->Arg(3)->Arg(4)->Arg(5)->Unit(
    benchmark::kMillisecond);

void BM_Fig8_SelectorAfterRestrictor(benchmark::State& state) {
  // §5.1: ALL SHORTEST TRAIL — full trail enumeration then selection.
  static PropertyGraph* g = new PropertyGraph(BuildPaperGraph());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunOrDie(*g,
                 "MATCH ALL SHORTEST TRAIL p = (a WHERE a.owner='Dave')"
                 "-[t:Transfer]->*(b WHERE b.owner='Aretha')"
                 "-[r:Transfer]->*(c WHERE c.owner='Mike')"));
  }
}
BENCHMARK(BM_Fig8_SelectorAfterRestrictor);

}  // namespace
}  // namespace gpml
