#ifndef GPML_SEMANTICS_TERMINATION_H_
#define GPML_SEMANTICS_TERMINATION_H_

#include "ast/ast.h"
#include "common/result.h"
#include "semantics/analyze.h"

namespace gpml {

/// Static termination checks of §5 on a normalized pattern:
///
///  1. Every unbounded quantifier ({m,}, *, +) must be within the scope of a
///     restrictor or a selector (§5): a restrictor at the declaration head,
///     a restrictor on an enclosing parenthesized pattern, or a selector at
///     the declaration head.
///
///  2. Prefilter predicates over effectively-unbounded group variables are
///     prohibited (§5.3): an aggregate inside an element/parenthesized/
///     iteration WHERE may only aggregate variables whose quantifier is
///     bounded — statically bounded ({m,n}) or bounded by a restrictor in
///     scope. A selector does NOT bound prefilters (it applies after
///     matching), which is exactly the ALL SHORTEST counter-example of §5.3.
///
/// Returns kNonTerminating with an explanatory message on violation.
Status CheckTermination(const GraphPattern& normalized,
                        const Analysis& analysis);

}  // namespace gpml

#endif  // GPML_SEMANTICS_TERMINATION_H_
