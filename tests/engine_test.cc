#include "eval/engine.h"

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "graph/graph_builder.h"
#include "graph/sample_graph.h"
#include "test_util.h"

namespace gpml {
namespace {

using testing_util::MatchStatusOf;
using testing_util::Rows;

TEST(EngineTest, ParseErrorsPropagate) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<MatchOutput> out = engine.Match("MATCH (x");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kSyntaxError);
}

TEST(EngineTest, SemanticErrorsPropagate) {
  PropertyGraph g = BuildPaperGraph();
  EXPECT_EQ(MatchStatusOf(g, "MATCH (x)-[x]->(y)").code(),
            StatusCode::kSemanticError);
}

TEST(EngineTest, TerminationErrorsPropagate) {
  PropertyGraph g = BuildPaperGraph();
  EXPECT_EQ(MatchStatusOf(g, "MATCH (a)->*(b)").code(),
            StatusCode::kNonTerminating);
}

TEST(EngineTest, EmptyGraphYieldsNoRows) {
  GraphBuilder b;
  PropertyGraph g = std::move(std::move(b).Build()).value();
  Engine engine(g);
  Result<MatchOutput> out = engine.Match("MATCH (x)");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->rows.empty());
}

TEST(EngineTest, MatchAllNodes) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<MatchOutput> out = engine.Match("MATCH (x)");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows.size(), 14u);
}

TEST(EngineTest, MinimalNodePatternMatchesEverythingOnce) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  // MATCH () — no variable, still 14 bindings (one per node).
  Result<MatchOutput> out = engine.Match("MATCH ()");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows.size(), 14u);
}

TEST(EngineTest, MaxRowsGuard) {
  PropertyGraph g = MakeCompleteGraph(6);
  EngineOptions options;
  options.max_rows = 10;
  // Cross product of two unconstrained decls: 6*... exceeds 10 rows.
  Status st = MatchStatusOf(g, "MATCH (a)->(b), (c)->(d)", options);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(EngineTest, MaxMatchesGuard) {
  PropertyGraph g = MakeCompleteGraph(8);
  EngineOptions options;
  options.matcher.max_matches = 50;
  Status st =
      MatchStatusOf(g, "MATCH TRAIL (a)-[:Transfer]->*(b)", options);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(EngineTest, MaxStepsGuard) {
  PropertyGraph g = MakeCompleteGraph(8);
  EngineOptions options;
  options.matcher.max_steps = 1000;
  Status st =
      MatchStatusOf(g, "MATCH TRAIL (a)-[:Transfer]->*(b)", options);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(EngineTest, RowScopeSingletonAndGroupAccess) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<MatchOutput> out = engine.Match(
      "MATCH (a WHERE a.owner='Jay')-[t:Transfer]->{2}(b)");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rows.size(), 2u);  // a4->a6->{a3,a5}.
  const MatchOutput& mo = *out;
  RowScope scope(mo, mo.rows[0]);
  int a_id = mo.vars->Find("a");
  int t_id = mo.vars->Find("t");
  ASSERT_GE(a_id, 0);
  ASSERT_GE(t_id, 0);
  EXPECT_TRUE(scope.LookupSingleton(a_id).has_value());
  EXPECT_EQ(scope.CollectGroup(t_id).size(), 2u);
}

TEST(EngineTest, ZeroWidthLoopGuard) {
  // [()]* cannot spin: the implementation admits at most the zero-iteration
  // solution (documented divergence in DESIGN.md).
  PropertyGraph g = MakeChainGraph(2);
  Engine engine(g);
  Result<MatchOutput> out = engine.Match("MATCH TRAIL (a)[()]*(b)");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->rows.size(), 2u);  // a=b for each node.
}

TEST(EngineTest, AnchoredSeedingByLabel) {
  // First node pattern with a plain label restricts seeds; results must be
  // identical to the unanchored equivalent with a postfilter.
  PropertyGraph g = BuildPaperGraph();
  EXPECT_EQ(Rows(g, "MATCH (x:Phone)~[e]~(y)", "x, e, y"),
            Rows(g, "MATCH (x)~[e]~(y) WHERE x.number IS NOT NULL "
                    "AND x.isBlocked IS NOT NULL",
                 "x, e, y"));
}

TEST(EngineTest, RepeatedVariableAcrossQuantifierJoins) {
  // §6: (a) ... (a) — the same account starts and ends the path.
  PropertyGraph g = BuildPaperGraph();
  std::vector<std::string> rows = Rows(
      g, "MATCH (a WHERE a.owner='Jay')[-[:Transfer]->]{4}(a)", "a");
  EXPECT_EQ(rows, (std::vector<std::string>{"a4"}));
}

}  // namespace
}  // namespace gpml
