#include "planner/explain.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/strings.h"

namespace gpml {
namespace planner {

namespace {

std::string FormatEstimate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Wall-clock milliseconds: fixed-point so atof parses back exactly what
/// matters (sub-microsecond truncation is below timer resolution anyway).
std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

std::string JoinVarNames(const std::vector<int>& vars_ids,
                         const VarTable& vars) {
  std::vector<std::string> names;
  names.reserve(vars_ids.size());
  // Escaping covers the comma, so the list stays unambiguous even for
  // adversarial variable names.
  for (int v : vars_ids) names.push_back(EscapeExplainValue(vars.name(v)));
  return Join(names, ",");
}

/// The value of a `key=` token in a step line; empty when absent.
std::string TokenValue(const std::string& line, const std::string& key) {
  size_t pos = line.find(" " + key);
  if (pos == std::string::npos) return "";
  pos += key.size() + 1;
  // `selector=` and `message=` extend to end of line (their values may
  // contain spaces; they are always the final token of their lines).
  if (key == "selector=" || key == "message=") return line.substr(pos);
  size_t end = line.find(' ', pos);
  if (end == std::string::npos) end = line.size();
  return line.substr(pos, end - pos);
}

}  // namespace

std::string EscapeExplainValue(const std::string& value, bool keep_spaces) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case ',': out += "\\c"; break;
      case ' ':
        if (keep_spaces) {
          out += ' ';
        } else {
          out += "\\s";
        }
        break;
      default: out += c; break;
    }
  }
  return out;
}

std::string UnescapeExplainValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\' || i + 1 == value.size()) {
      out += value[i];
      continue;
    }
    switch (value[++i]) {
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 'c': out += ','; break;
      case 's': out += ' '; break;
      default:
        out += '\\';
        out += value[i];
        break;
    }
  }
  return out;
}

std::string ExplainPlan(const Plan& plan, const VarTable& vars,
                        const GraphStats* stats, const ExplainExec* exec,
                        const std::vector<DeclActual>* actuals,
                        const analysis::DiagnosticList* warnings) {
  std::ostringstream os;
  os << "plan: " << plan.decls.size() << " declaration(s), planner="
     << (plan.planner_used ? "on" : "off") << "\n";
  if (exec != nullptr) {
    os << "exec: threads=" << exec->threads
       << " cached=" << (exec->cached ? "true" : "false")
       // Vectorized matcher block target; 0 = scalar execution.
       << " batch=" << exec->batch;
    if (exec->analyzed) {
      os << " rows=" << exec->rows
         << " truncated=" << (exec->truncated ? "true" : "false");
      // Measured wall-clock totals (monotonic): whole execution and the
      // compile cost it paid (0.000 when the plan came from the cache).
      if (exec->total_ms >= 0) os << " ms=" << FormatMs(exec->total_ms);
      if (exec->plan_ms >= 0) os << " plan_ms=" << FormatMs(exec->plan_ms);
    }
    os << "\n";
  }
  if (warnings != nullptr && !warnings->empty()) {
    os << "warnings: " << warnings->size() << "\n";
    size_t n = 0;
    for (const analysis::Diagnostic& d : *warnings) {
      // `message=` is the final token and extends to end of line, so its
      // escaping keeps spaces literal; `hint=` is space-delimited.
      os << "warning " << ++n << ": code=" << d.code
         << " severity=" << analysis::SeverityName(d.severity)
         << " begin=" << d.span.begin << " end=" << d.span.end
         << " hint=" << EscapeExplainValue(d.hint)
         << " message=" << EscapeExplainValue(d.message, /*keep_spaces=*/true)
         << "\n";
    }
  }
  for (size_t i = 0; i < plan.decls.size(); ++i) {
    const DeclPlan& dp = plan.decls[i];
    os << "step " << (i + 1) << ": decl=" << dp.decl_index
       << " dir=" << (dp.reversed ? "reversed" : "forward")
       << " anchor=" << (dp.reversed ? "right" : "left") << " var="
       << (dp.anchor_var >= 0 ? EscapeExplainValue(vars.name(dp.anchor_var))
                              : std::string("_"))
       // A bound step's seed count is the number of distinct join values,
       // known only at run time; printing the static estimate here would
       // read as if the restriction weren't applied.
       << " seeds~"
       << (dp.seed_bound_var >= 0 ? std::string("*")
                                  : FormatEstimate(dp.anchor.enumerated))
       << " source=";
    if (dp.seed_bound_var >= 0) {
      os << "bound:" << EscapeExplainValue(vars.name(dp.seed_bound_var));
    } else if (dp.anchor.has_index()) {
      // Index-backed seeding from the (label, prop) = value hash index.
      os << "index:" << EscapeExplainValue(dp.anchor.label) << "."
         << EscapeExplainValue(dp.anchor.index_prop);
    } else if (!dp.anchor.label.empty()) {
      os << "label:" << EscapeExplainValue(dp.anchor.label);
    } else {
      os << "all";
    }
    os << " fanout~" << FormatEstimate(dp.anchor.fanout)
       // Inline-predicate selectivity the seed estimate used — exact when
       // histogram estimates resolved it, else the System-R constants.
       << " sel~" << FormatEstimate(dp.anchor.selectivity) << " join=["
       << JoinVarNames(dp.join_vars, vars) << "]";
    if (actuals != nullptr && i < actuals->size()) {
      // EXPLAIN ANALYZE: measured counterparts of the estimates above.
      const DeclActual& a = (*actuals)[i];
      os << " actual_seeds=" << a.seeds << " actual_steps=" << a.steps
         << " actual_rows=" << a.bindings;
      if (a.ms >= 0) os << " actual_ms=" << FormatMs(a.ms);
      os << " actual_source="
         << (a.index_seeded ? "index" : (a.seed_filtered ? "bound" : "scan"));
    }
    std::string selector = dp.decl.selector.ToString();
    os << " selector="
       << (selector.empty()
               ? std::string("none")
               : EscapeExplainValue(selector, /*keep_spaces=*/true))
       << "\n";
  }
  if (stats != nullptr) {
    os << "-- graph stats --\n" << stats->ToString();
  }
  return os.str();
}

Result<ExplainedPlan> ParseExplain(const std::string& text) {
  ExplainedPlan out;
  std::istringstream is(text);
  std::string line;
  bool saw_header = false;
  size_t declared = 0;
  size_t declared_warnings = 0;
  while (std::getline(is, line)) {
    if (line.rfind("plan: ", 0) == 0) {
      saw_header = true;
      declared = static_cast<size_t>(std::atoi(line.c_str() + 6));
      out.planner_on = line.find("planner=on") != std::string::npos;
      continue;
    }
    if (line.rfind("-- graph stats --", 0) == 0) break;
    if (line.rfind("warnings: ", 0) == 0) {
      declared_warnings = static_cast<size_t>(std::atoi(line.c_str() + 10));
      continue;
    }
    if (line.rfind("warning ", 0) == 0) {
      ExplainedWarning w;
      w.code = TokenValue(line, "code=");
      w.severity = TokenValue(line, "severity=");
      w.begin = static_cast<size_t>(
          std::atol(TokenValue(line, "begin=").c_str()));
      w.end = static_cast<size_t>(std::atol(TokenValue(line, "end=").c_str()));
      w.hint = UnescapeExplainValue(TokenValue(line, "hint="));
      w.message = UnescapeExplainValue(TokenValue(line, "message="));
      out.warnings.push_back(std::move(w));
      continue;
    }
    if (line.rfind("exec: ", 0) == 0) {
      out.has_exec = true;
      out.threads = static_cast<size_t>(
          std::atoi(TokenValue(line, "threads=").c_str()));
      out.cached = TokenValue(line, "cached=") == "true";
      out.batch = static_cast<size_t>(
          std::atol(TokenValue(line, "batch=").c_str()));
      std::string rows = TokenValue(line, "rows=");
      if (!rows.empty()) {
        out.analyzed = true;
        out.rows = static_cast<size_t>(std::atol(rows.c_str()));
        out.truncated = TokenValue(line, "truncated=") == "true";
        // " ms=" cannot collide with " plan_ms=" / " actual_ms=": TokenValue
        // requires a space before the key and those embed ms= after '_'.
        std::string ms = TokenValue(line, "ms=");
        if (!ms.empty()) out.total_ms = std::atof(ms.c_str());
        std::string plan_ms = TokenValue(line, "plan_ms=");
        if (!plan_ms.empty()) out.plan_ms = std::atof(plan_ms.c_str());
      }
      continue;
    }
    if (line.rfind("step ", 0) != 0) continue;
    ExplainedDecl d;
    d.step = std::atoi(line.c_str() + 5);
    std::string decl = TokenValue(line, "decl=");
    if (decl.empty()) {
      return Status::InvalidArgument("EXPLAIN step line missing decl=: " +
                                     line);
    }
    d.decl_index = std::atoi(decl.c_str());
    d.reversed = TokenValue(line, "dir=") == "reversed";
    d.anchor = TokenValue(line, "anchor=");
    d.var = UnescapeExplainValue(TokenValue(line, "var="));
    std::string seeds = TokenValue(line, "seeds~");
    d.seeds = seeds == "*" ? -1 : std::atof(seeds.c_str());
    std::string sel = TokenValue(line, "sel~");
    if (!sel.empty()) d.selectivity = std::atof(sel.c_str());
    // The source prefix ("all" / "label:" / "bound:") never contains escape
    // characters, so unescaping the whole token restores exactly the value
    // part.
    d.source = UnescapeExplainValue(TokenValue(line, "source="));
    std::string join = TokenValue(line, "join=");
    if (join.size() >= 2 && join.front() == '[' && join.back() == ']') {
      std::string inner = join.substr(1, join.size() - 2);
      if (!inner.empty()) {
        // Commas inside names are escaped (\c), so this split is exact.
        for (const std::string& name : Split(inner, ',')) {
          d.join_vars.push_back(UnescapeExplainValue(name));
        }
      }
    }
    d.selector = UnescapeExplainValue(TokenValue(line, "selector="));
    std::string actual = TokenValue(line, "actual_seeds=");
    if (!actual.empty()) {
      d.actual_seeds = std::atol(actual.c_str());
      d.actual_steps = std::atol(TokenValue(line, "actual_steps=").c_str());
      d.actual_rows = std::atol(TokenValue(line, "actual_rows=").c_str());
      std::string actual_ms = TokenValue(line, "actual_ms=");
      if (!actual_ms.empty()) d.actual_ms = std::atof(actual_ms.c_str());
      d.actual_source = TokenValue(line, "actual_source=");
    }
    out.decls.push_back(std::move(d));
  }
  if (!saw_header) {
    return Status::InvalidArgument("EXPLAIN text has no plan: header");
  }
  if (out.decls.size() != declared) {
    return Status::InvalidArgument("EXPLAIN header declares " +
                                   std::to_string(declared) +
                                   " declaration(s) but " +
                                   std::to_string(out.decls.size()) +
                                   " step line(s) found");
  }
  if (out.warnings.size() != declared_warnings) {
    return Status::InvalidArgument(
        "EXPLAIN warnings header declares " +
        std::to_string(declared_warnings) + " warning(s) but " +
        std::to_string(out.warnings.size()) + " warning line(s) found");
  }
  return out;
}

Table ExplainTable(const std::string& text) {
  Table table(Schema({{"plan", ValueType::kString, false}}));
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    table.AppendUnchecked({Value::String(line)});
  }
  return table;
}

namespace {

/// Shared prefix-stripping for statement keywords: after leading
/// whitespace, `keyword` (case-insensitive) followed by whitespace or end.
bool StripKeywordPrefix(const std::string& statement, const char* keyword,
                        std::string* rest) {
  size_t i = 0;
  while (i < statement.size() &&
         std::isspace(static_cast<unsigned char>(statement[i]))) {
    ++i;
  }
  size_t len = std::strlen(keyword);
  size_t k = 0;
  while (k < len && i + k < statement.size() &&
         std::toupper(static_cast<unsigned char>(statement[i + k])) ==
             keyword[k]) {
    ++k;
  }
  if (k != len) return false;
  size_t after = i + len;
  if (after < statement.size() &&
      !std::isspace(static_cast<unsigned char>(statement[after]))) {
    return false;  // Identifier merely starting with the keyword.
  }
  *rest = statement.substr(after);
  return true;
}

}  // namespace

bool StripExplainPrefix(const std::string& statement, std::string* rest) {
  return StripKeywordPrefix(statement, "EXPLAIN", rest);
}

bool StripAnalyzePrefix(const std::string& statement, std::string* rest) {
  return StripKeywordPrefix(statement, "ANALYZE", rest);
}

}  // namespace planner
}  // namespace gpml
