#ifndef GPML_ANALYSIS_ANALYZER_H_
#define GPML_ANALYSIS_ANALYZER_H_

#include "analysis/diagnostic.h"
#include "ast/ast.h"
#include "graph/property_graph.h"
#include "semantics/analyze.h"

namespace gpml {
namespace analysis {

/// Output of the static analyzer.
struct QueryAnalysis {
  /// Every finding, in pattern order. Prepare fails when has_errors().
  DiagnosticList diagnostics;

  /// The pattern can never produce a binding (a mandatory site is
  /// unsatisfiable): the engine compiles it to the cached empty plan —
  /// execution publishes metrics with 0 seeds and 0 steps.
  bool always_empty = false;

  /// Postfilter with parameter-free always-true conjuncts dropped; nullptr
  /// when the whole postfilter folded to TRUE. Meaningful only when
  /// postfilter_rewritten.
  ExprPtr rewritten_postfilter;
  bool postfilter_rewritten = false;
};

/// Runs the four static passes — type checking, satisfiability pruning,
/// schema-aware lints (skipped when `graph` is null), and the cartesian
/// product lint — over a *normalized* pattern and its semantic Analysis.
/// Never fails: all findings are collected into `diagnostics`, and the
/// caller decides what an error means (Engine::Prepare rejects; Lint
/// returns everything).
QueryAnalysis AnalyzeQuery(const GraphPattern& normalized,
                           const Analysis& vars, const PropertyGraph* graph);

}  // namespace analysis
}  // namespace gpml

#endif  // GPML_ANALYSIS_ANALYZER_H_
