// §7.1 Language Opportunities (implemented as extensions): isomorphic
// match modes, cheapest (weighted) regex paths, and JSON export — the
// ablation costs of each against their baseline.

#include <benchmark/benchmark.h>

#include "baseline/rpq_nfa.h"
#include "bench_util.h"
#include "gql/json_export.h"

namespace gpml {
namespace {

using bench::RunOrDie;

PropertyGraph& Bank() {
  static PropertyGraph* g = new PropertyGraph([] {
    FraudGraphOptions options;
    options.num_accounts = 400;
    return MakeFraudGraph(options);
  }());
  return *g;
}

void BM_Lo_MatchModeAblation(benchmark::State& state) {
  // The same two-leg pattern under each match mode.
  const char* modes[] = {"", "DIFFERENT EDGES ", "DIFFERENT NODES "};
  std::string query = std::string("MATCH ") + modes[state.range(0)] +
                      "(x)-[a:Transfer]->(y), (y)-[b:Transfer]->(z)";
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunOrDie(Bank(), query);
    benchmark::DoNotOptimize(rows);
  }
  state.SetLabel(state.range(0) == 0 ? "REPEATABLE ELEMENTS"
                                     : modes[state.range(0)]);
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Lo_MatchModeAblation)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

void BM_Lo_CheapestVsShortest(benchmark::State& state) {
  // Weighted Dijkstra vs unweighted BFS over the same product space.
  static PropertyGraph* g = new PropertyGraph(MakeGridGraph(60, 60));
  baseline::RpqNfa nfa = baseline::BuildNfa(
      **baseline::ParseRegex("Transfer+"));
  NodeId src = g->FindNode("g0_0");
  NodeId dst = g->FindNode("g59_59");
  bool weighted = state.range(0) == 1;
  for (auto _ : state) {
    Result<Path> p =
        weighted
            ? baseline::CheapestRegexPath(*g, nfa, src, dst, "amount")
            : baseline::ShortestRegexPath(*g, nfa, src, dst);
    if (!p.ok()) std::abort();
    benchmark::DoNotOptimize(p->Length());
  }
  state.SetLabel(weighted ? "cheapest(Dijkstra)" : "shortest(BFS)");
}
BENCHMARK(BM_Lo_CheapestVsShortest)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

void BM_Lo_CheapestWithHopBound(benchmark::State& state) {
  // The layered product grows with the hop bound.
  static PropertyGraph* g = new PropertyGraph(MakeGridGraph(30, 30));
  baseline::RpqNfa nfa = baseline::BuildNfa(
      **baseline::ParseRegex("Transfer+"));
  NodeId src = g->FindNode("g0_0");
  NodeId dst = g->FindNode("g29_29");
  size_t bound = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Result<Path> p = baseline::CheapestRegexPathWithinHops(
        *g, nfa, src, dst, "amount", bound);
    if (!p.ok()) std::abort();
    benchmark::DoNotOptimize(p->Length());
  }
}
BENCHMARK(BM_Lo_CheapestWithHopBound)->Arg(58)->Arg(80)->Arg(120)->Unit(
    benchmark::kMillisecond);

void BM_Lo_JsonExport(benchmark::State& state) {
  PropertyGraph& g = Bank();
  Engine engine(g);
  Result<MatchOutput> out = engine.Match(
      "MATCH p = (x:Account WHERE x.isBlocked='yes')-[t:Transfer]->{2}(y)");
  if (!out.ok()) std::abort();
  size_t bytes = 0;
  for (auto _ : state) {
    std::string json = ExportJson(*out, g);
    bytes = json.size();
    benchmark::DoNotOptimize(json.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_Lo_JsonExport);

}  // namespace
}  // namespace gpml
