#include "baseline/regex.h"

#include <cctype>

namespace gpml {
namespace baseline {

namespace {

std::shared_ptr<Regex> Make(Regex::Kind kind) {
  auto r = std::make_shared<Regex>();
  r->kind = kind;
  return r;
}

class RegexParser {
 public:
  explicit RegexParser(const std::string& text) : text_(text) {}

  Result<RegexPtr> Parse() {
    GPML_ASSIGN_OR_RETURN(RegexPtr r, ParseUnion());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::SyntaxError("trailing input in path regex");
    }
    return r;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }
  bool Eat(char c) {
    if (!Peek(c)) return false;
    ++pos_;
    return true;
  }

  Result<RegexPtr> ParseUnion() {
    GPML_ASSIGN_OR_RETURN(RegexPtr left, ParseConcat());
    while (Eat('|')) {
      GPML_ASSIGN_OR_RETURN(RegexPtr right, ParseConcat());
      auto u = Make(Regex::Kind::kUnion);
      u->left = std::move(left);
      u->right = std::move(right);
      left = std::move(u);
    }
    return left;
  }

  Result<RegexPtr> ParseConcat() {
    GPML_ASSIGN_OR_RETURN(RegexPtr left, ParsePostfix());
    while (true) {
      SkipSpace();
      if (Eat('/')) {
        GPML_ASSIGN_OR_RETURN(RegexPtr right, ParsePostfix());
        auto c = Make(Regex::Kind::kConcat);
        c->left = std::move(left);
        c->right = std::move(right);
        left = std::move(c);
        continue;
      }
      // Juxtaposition also concatenates: "a b".
      if (pos_ < text_.size() &&
          (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
           text_[pos_] == '_' || text_[pos_] == '^' || text_[pos_] == '(')) {
        GPML_ASSIGN_OR_RETURN(RegexPtr right, ParsePostfix());
        auto c = Make(Regex::Kind::kConcat);
        c->left = std::move(left);
        c->right = std::move(right);
        left = std::move(c);
        continue;
      }
      return left;
    }
  }

  Result<RegexPtr> ParsePostfix() {
    GPML_ASSIGN_OR_RETURN(RegexPtr r, ParseAtom());
    while (true) {
      SkipSpace();
      if (Eat('*')) {
        auto s = Make(Regex::Kind::kStar);
        s->left = std::move(r);
        r = std::move(s);
      } else if (Eat('+')) {
        auto s = Make(Regex::Kind::kPlus);
        s->left = std::move(r);
        r = std::move(s);
      } else if (Eat('?')) {
        auto s = Make(Regex::Kind::kOpt);
        s->left = std::move(r);
        r = std::move(s);
      } else {
        return r;
      }
    }
  }

  Result<RegexPtr> ParseAtom() {
    SkipSpace();
    if (Eat('(')) {
      GPML_ASSIGN_OR_RETURN(RegexPtr r, ParseUnion());
      if (!Eat(')')) return Status::SyntaxError("expected ) in path regex");
      return r;
    }
    bool inverse = Eat('^');
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (start == pos_) {
      return Status::SyntaxError("expected label in path regex at offset " +
                                 std::to_string(pos_));
    }
    auto r = Make(inverse ? Regex::Kind::kInverse : Regex::Kind::kLabel);
    r->label = text_.substr(start, pos_ - start);
    return RegexPtr(std::move(r));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string Regex::ToString() const {
  switch (kind) {
    case Kind::kLabel: return label;
    case Kind::kInverse: return "^" + label;
    case Kind::kConcat: return left->ToString() + "/" + right->ToString();
    case Kind::kUnion:
      return "(" + left->ToString() + "|" + right->ToString() + ")";
    case Kind::kStar: return "(" + left->ToString() + ")*";
    case Kind::kPlus: return "(" + left->ToString() + ")+";
    case Kind::kOpt: return "(" + left->ToString() + ")?";
  }
  return "?";
}

Result<RegexPtr> ParseRegex(const std::string& text) {
  RegexParser p(text);
  return p.Parse();
}

}  // namespace baseline
}  // namespace gpml
