#include <gtest/gtest.h>

#include "graph/generator.h"
#include "graph/graph_builder.h"
#include "graph/sample_graph.h"
#include "test_util.h"

namespace gpml {
namespace {

using testing_util::Paths;
using testing_util::Rows;

// E14: selectors (Figure 8, §5.1).

TEST(SelectorTest, AnyShortestPaperExample) {
  PropertyGraph g = BuildPaperGraph();
  EXPECT_EQ(Paths(g,
                  "MATCH ANY SHORTEST p = (a WHERE a.owner='Dave')"
                  "-[t:Transfer]->*(b WHERE b.owner='Aretha')"),
            (std::vector<std::string>{"path(a6,t5,a3,t2,a2)"}));
}

TEST(SelectorTest, AllShortestOnDiamond) {
  // Each diamond doubles the number of shortest paths: 2^k.
  PropertyGraph g = MakeDiamondChain(3);
  std::vector<std::string> rows =
      Paths(g,
            "MATCH ALL SHORTEST p = (a WHERE a.owner='s0')"
            "-[:Transfer]->*(b WHERE b.owner='s3')");
  EXPECT_EQ(rows.size(), 8u);
}

TEST(SelectorTest, AnyPicksExactlyOnePerPartition) {
  PropertyGraph g = MakeDiamondChain(3);
  EXPECT_EQ(Paths(g,
                  "MATCH ANY p = (a WHERE a.owner='s0')-[:Transfer]->*"
                  "(b WHERE b.owner='s3')")
                .size(),
            1u);
}

TEST(SelectorTest, AnyKRespectsK) {
  PropertyGraph g = MakeDiamondChain(3);  // 8 source-sink paths.
  EXPECT_EQ(Paths(g,
                  "MATCH ANY 3 p = (a WHERE a.owner='s0')-[:Transfer]->*"
                  "(b WHERE b.owner='s3')")
                .size(),
            3u);
  // More than available: all are retained (Figure 8).
  EXPECT_EQ(Paths(g,
                  "MATCH ANY 20 p = (a WHERE a.owner='s0')-[:Transfer]->*"
                  "(b WHERE b.owner='s3')")
                .size(),
            8u);
}

TEST(SelectorTest, ShortestKOrdersByLength) {
  // Grid: corner-to-corner shortest paths have length w+h-2; SHORTEST k
  // must prefer them over longer walks.
  PropertyGraph g = MakeGridGraph(3, 3);
  std::vector<std::string> rows =
      Paths(g,
            "MATCH SHORTEST 6 p = (a WHERE a.owner='u0')-[:Transfer]->*"
            "(b WHERE b.owner='u8')");
  ASSERT_EQ(rows.size(), 6u);
  for (const std::string& r : rows) {
    // All six C(4,2)=6 shortest corner paths have 4 edges = 5 nodes:
    // count commas: 4 edges + 5 nodes = 9 items, 8 commas.
    EXPECT_EQ(std::count(r.begin(), r.end(), ','), 8) << r;
  }
}

TEST(SelectorTest, ShortestKGroupKeepsWholeLengthGroups) {
  PropertyGraph g = BuildPaperGraph();
  // Dave->Aretha: lengths 2 (one path), then longer groups.
  std::vector<std::string> one_group =
      Paths(g,
            "MATCH SHORTEST 1 GROUP p = (a WHERE a.owner='Dave')"
            "-[t:Transfer]->*(b WHERE b.owner='Aretha')");
  EXPECT_EQ(one_group,
            (std::vector<std::string>{"path(a6,t5,a3,t2,a2)"}));

  std::vector<std::string> two_groups =
      Paths(g,
            "MATCH SHORTEST 2 GROUP p = (a WHERE a.owner='Dave')"
            "-[t:Transfer]->*(b WHERE b.owner='Aretha')");
  EXPECT_EQ(two_groups.size(), 2u);
  EXPECT_NE(std::find(two_groups.begin(), two_groups.end(),
                      "path(a6,t6,a5,t8,a1,t1,a3,t2,a2)"),
            two_groups.end())
      << "second length group is the 4-edge path";
}

TEST(SelectorTest, PartitionsAreIndependent) {
  // ALL SHORTEST partitions by endpoints: every (start,end) pair reachable
  // keeps its own shortest paths, with per-partition lengths (Figure 8).
  PropertyGraph g = MakeChainGraph(4);
  std::vector<std::string> rows =
      Rows(g, "MATCH ALL SHORTEST (a)-[:Transfer]->*(b)", "a, b");
  // On a chain, every ordered reachable pair has exactly one path.
  EXPECT_EQ(rows.size(), 10u);  // 4 zero-length + 3 + 2 + 1.
}

TEST(SelectorTest, SelectorAppliesAfterRestrictor) {
  // §5.1: ALL SHORTEST TRAIL — shortest among trails. Dave->Aretha->Mike.
  PropertyGraph g = BuildPaperGraph();
  EXPECT_EQ(
      Paths(g,
            "MATCH ALL SHORTEST TRAIL p = (a WHERE a.owner='Dave')"
            "-[t:Transfer]->*(b WHERE b.owner='Aretha')"
            "-[r:Transfer]->*(c WHERE c.owner='Mike')"),
      (std::vector<std::string>{
          "path(a6,t5,a3,t2,a2,t3,a4,t4,a6,t6,a5,t8,a1,t1,a3)",
          "path(a6,t6,a5,t8,a1,t1,a3,t2,a2,t3,a4,t4,a6,t5,a3)"}))
      << "the two 7-edge trails of §5.1; the shorter non-trail is excluded";
}

TEST(SelectorTest, ShortestWithCyclesTerminates) {
  PropertyGraph g = MakeCycleGraph(5);
  std::vector<std::string> rows =
      Paths(g,
            "MATCH ANY SHORTEST p = (a WHERE a.owner='u0')-[:Transfer]->*"
            "(b WHERE b.owner='u3')");
  EXPECT_EQ(rows, (std::vector<std::string>{
                      "path(v0,t0,v1,t1,v2,t2,v3)"}));
}

TEST(SelectorTest, AllShortestDeterministicOnTies) {
  // Two parallel edges of equal length: ALL SHORTEST keeps both.
  PropertyGraph g = [] {
    GraphBuilder b;
    b.AddNode("u", {"N"});
    b.AddNode("v", {"N"});
    b.AddDirectedEdge("e1", "u", "v", {"T"});
    b.AddDirectedEdge("e2", "u", "v", {"T"});
    return std::move(std::move(b).Build()).value();
  }();
  std::vector<std::string> rows =
      Paths(g, "MATCH ALL SHORTEST p = (a)-[:T]->+(b)");
  EXPECT_EQ(rows, (std::vector<std::string>{"path(u,e1,v)", "path(u,e2,v)"}));
}

}  // namespace
}  // namespace gpml
