#include "server/worker_pool.h"

#include <utility>

#include "obs/clock.h"

namespace gpml {
namespace server {

WorkerPool::WorkerPool(size_t num_threads, size_t max_queue)
    : max_queue_(max_queue) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

bool WorkerPool::Submit(std::function<void()> task) {
  return SubmitTimed(
      [task = std::move(task)](double /*queue_ms*/) { task(); });
}

bool WorkerPool::SubmitTimed(std::function<void(double queue_ms)> task) {
  QueuedTask queued;
  queued.fn = std::move(task);
  queued.enqueued_us = obs::MonotonicMicros();
  return Enqueue(std::move(queued));
}

bool WorkerPool::Enqueue(QueuedTask task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    if (queue_.size() >= max_queue_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && threads_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

size_t WorkerPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t WorkerPool::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

void WorkerPool::WorkerLoop() {
  while (true) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ with a drained queue: exit. (stopping_ with queued
        // tasks keeps draining — Shutdown's contract.)
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    const double queue_ms =
        static_cast<double>(obs::MonotonicMicros() - task.enqueued_us) / 1e3;
    task.fn(queue_ms);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace server
}  // namespace gpml
