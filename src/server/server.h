#ifndef GPML_SERVER_SERVER_H_
#define GPML_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "eval/engine.h"
#include "obs/metrics.h"
#include "server/admission.h"
#include "server/json.h"
#include "server/session.h"
#include "server/worker_pool.h"

namespace gpml {
namespace server {

/// Server configuration. Engine options default to one worker thread per
/// query — the server's parallelism comes from running many tenants'
/// queries concurrently on the worker pool, not from sharding every query
/// across the whole box.
struct ServerOptions {
  ServerOptions() { engine.num_threads = 1; }

  /// Listen address. Defaults to loopback: this daemon has no auth layer,
  /// so binding wide is an explicit operator decision.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (tests, benchmarks) — read the
  /// real one back with port().
  int port = 0;
  /// Worker threads executing queries (execute/open/fetch run here).
  size_t worker_threads = 4;
  /// Bounded worker-pool queue; a request arriving with the queue full is
  /// rejected with SERVER_SATURATED instead of queueing unboundedly.
  size_t max_queue = 64;
  /// Concurrent TCP connections; further accepts are turned away with an
  /// error line.
  size_t max_connections = 256;
  /// Sessions idle longer than this are reaped: statements and cursors
  /// dropped, subsequent requests answered with SESSION_EXPIRED.
  double idle_timeout_ms = 5 * 60 * 1000.0;
  /// Reaper wake-up period.
  double reap_interval_ms = 250.0;
  /// Admission quota for tenants without an explicit SetQuota.
  TenantQuota default_quota;
  /// Base engine options for every execution; admission control tightens
  /// matcher.max_steps/max_matches per tenant (see AdmissionController).
  EngineOptions engine;
  /// Enables the debug_sleep op (deterministic saturation/concurrency
  /// tests). Never on in production mains.
  bool enable_debug_ops = false;
};

/// A multi-threaded TCP query server speaking the newline-delimited JSON
/// protocol of docs/server.md over per-connection sessions, plus plain
/// HTTP GET for the observability endpoints:
///
///   GET /metrics       -> RenderPrometheus(AggregateAllRegistries())
///   GET /slow_queries  -> slow-query captures as JSON (?graph=NAME
///                         filters by graph identity)
///   GET /query_stats   -> per-fingerprint workload statistics as JSON,
///                         sorted by total time (?graph= and ?tenant=
///                         filter; docs/observability.md has the schema)
///
/// Lifecycle: construct, AddGraph named graphs (or let clients load_graph
/// generator graphs), Start, serve, Stop. Stop is graceful: accepting
/// stops, in-flight executions drain to completion and their responses
/// are written, then the threads join.
class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a named graph served to every session. Thread-safe; usable
  /// before and after Start (load_graph goes through the same path).
  Status AddGraph(std::string name, PropertyGraph graph);

  /// Binds, listens, and spawns the accept/reaper/worker threads.
  Status Start();

  /// Graceful shutdown; safe to call more than once, also from the
  /// destructor. Blocks until every in-flight execution has completed and
  /// every thread has joined.
  void Stop();

  /// The port actually bound (== options().port unless that was 0).
  int port() const { return port_; }
  const ServerOptions& options() const { return options_; }

  /// Per-tenant quota installation and inspection (tests, mains).
  AdmissionController& admission() { return admission_; }
  /// Live session table (tests assert on reaping).
  SessionRegistry& sessions() { return registry_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// Per-connection protocol state lives on the connection thread's
  /// stack; this is the dispatcher's view of it.
  struct ConnState {
    std::shared_ptr<ServerSession> session;
    bool close_requested = false;
  };

  void AcceptLoop();
  void ReaperLoop();
  void HandleConnection(Connection* conn);
  void HandleHttp(int fd, const std::string& request_line,
                  std::string* buffered, size_t* buffer_pos);

  /// Dispatches one NDJSON request line to its handler; returns the
  /// response line (without trailing newline).
  std::string Dispatch(ConnState* state, const std::string& line);

  /// Ensures the connection has a session (creating one under `tenant`
  /// admission); empty tenant means "default".
  Status EnsureSession(ConnState* state, const std::string& tenant);

  /// Runs `fn` on the worker pool under a tenant query ticket, blocking
  /// until it finishes; maps saturation and quota refusals to structured
  /// errors. Builds the request-level trace (root "request" with
  /// admission/queue/session child spans, emitted to the engine trace
  /// sink when one is configured) and injects a "timing" object —
  /// admission_ms / queue_ms / exec_ms — into successful responses.
  /// `trace_id` is the client-supplied correlation id ("" = none): echoed
  /// as a root-span attribute and threaded into the engine options so
  /// slow-query captures carry it.
  std::string RunPooled(const char* op, const std::string& tenant,
                        const std::string& trace_id, const std::string& id_raw,
                        const std::function<std::string()>& fn);

  // Op handlers (NDJSON). All return a full response line.
  std::string OpHello(ConnState* state, const JsonValue& req,
                      const std::string& id_raw);
  std::string OpListGraphs(const std::string& id_raw);
  std::string OpLoadGraph(const JsonValue& req, const std::string& id_raw);
  std::string OpUseGraph(ConnState* state, const JsonValue& req,
                         const std::string& id_raw);
  std::string OpPrepare(ConnState* state, const JsonValue& req,
                        const std::string& id_raw);
  std::string OpExplain(ConnState* state, const JsonValue& req,
                        const std::string& id_raw);
  std::string OpExecute(ConnState* state, const JsonValue& req,
                        const std::string& id_raw);
  std::string OpOpen(ConnState* state, const JsonValue& req,
                     const std::string& id_raw);
  std::string OpFetch(ConnState* state, const JsonValue& req,
                      const std::string& id_raw);
  std::string OpCloseCursor(ConnState* state, const JsonValue& req,
                            const std::string& id_raw);
  std::string OpCloseStatement(ConnState* state, const JsonValue& req,
                               const std::string& id_raw);
  std::string OpMetrics(const std::string& id_raw);
  std::string OpSlowQueries(const JsonValue& req, const std::string& id_raw);
  std::string OpQueryStats(const JsonValue& req, const std::string& id_raw);
  std::string OpStats(ConnState* state, const std::string& id_raw);
  std::string OpDebugSleep(ConnState* state, const JsonValue& req,
                           const std::string& id_raw);

  /// Slow-query records as a JSON array ("" graph = all graphs).
  Result<std::string> SlowQueriesJson(const std::string& graph);

  /// Query-stats entries as a JSON array sorted by total time, descending
  /// ("" graph / "" tenant = no filter). Reads the store the executions
  /// record into (ServerOptions::engine.query_stats, or the process-wide
  /// store when that is null).
  Result<std::string> QueryStatsJson(const std::string& graph,
                                     const std::string& tenant);

  /// Engine options for one execution of `tenant`: base options with the
  /// tenant's quota mapped onto the matcher budget, `metrics` attached,
  /// and the tenant / client trace_id stamped for slow-query captures and
  /// query-stats attribution.
  EngineOptions ExecutionOptions(const std::string& tenant,
                                 EngineMetrics* metrics,
                                 const std::string& trace_id) const;

  // Per-tenant metric families, registered in the server registry with
  // the tenant (and refusal reason) spliced into the series name as
  // Prometheus labels — AggregateAllRegistries exports them via /metrics.
  obs::Counter* TenantStepsCounter(const std::string& tenant);
  obs::Counter* TenantRefusalsCounter(const std::string& tenant,
                                      const char* reason);
  obs::Gauge* TenantSessionsGauge(const std::string& tenant);

  /// Charges `steps` against the tenant's admission budget and mirrors
  /// them into gpml_tenant_steps_total{tenant=...}.
  void ChargeTenantSteps(const std::string& tenant, uint64_t steps);

  /// Releases the session's admission slot exactly once (the
  /// admission_released latch) and decrements the tenant's active-sessions
  /// gauge with it. Both teardown paths — connection close and the idle
  /// reaper — funnel through here. Returns whether this call released.
  bool ReleaseSessionSlot(const std::shared_ptr<ServerSession>& session);

  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;

  mutable std::mutex catalog_mu_;
  Catalog catalog_;

  AdmissionController admission_;
  SessionRegistry registry_;
  std::unique_ptr<WorkerPool> pool_;

  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::mutex lifecycle_mu_;

  std::thread accept_thread_;
  std::thread reaper_thread_;
  std::mutex reaper_mu_;
  std::condition_variable reaper_cv_;

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  // Server-level telemetry, registered process-wide so the /metrics
  // endpoint (AggregateAllRegistries) exports it alongside the per-graph
  // engine registries.
  obs::MetricsRegistry metrics_;
  obs::Counter* connections_total_;
  obs::Counter* requests_total_;
  obs::Counter* errors_total_;
  obs::Counter* rejected_saturated_total_;
  obs::Counter* rejected_quota_total_;
  obs::Counter* sessions_opened_total_;
  obs::Counter* sessions_reaped_total_;
  obs::Counter* queries_total_;
  obs::Histogram* query_duration_us_;
};

}  // namespace server
}  // namespace gpml

#endif  // GPML_SERVER_SERVER_H_
