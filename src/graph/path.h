#ifndef GPML_GRAPH_PATH_H_
#define GPML_GRAPH_PATH_H_

#include <string>
#include <vector>

#include "graph/property_graph.h"

namespace gpml {

/// A path in the sense of §2 (a *walk* in graph-theory terms): an alternating
/// sequence of nodes and edges that starts and ends with a node, where
/// consecutive nodes are connected by the edge between them. Edges may be
/// traversed forward, backward, or as undirected edges; the traversal
/// direction is recorded because the textual form path(c1,li1,a1,...) of the
/// paper distinguishes, e.g., following li1 "in reverse direction".
///
/// Paths are value types: cheap to copy for the sizes that pattern matching
/// produces, hashable and comparable for deduplication and deterministic
/// output ordering.
class Path {
 public:
  Path() = default;
  /// A zero-length path sitting on `start`.
  explicit Path(NodeId start) : nodes_{start} {}

  /// Number of edges (the "length" used by SHORTEST selectors).
  size_t Length() const { return edges_.size(); }
  bool IsEmpty() const { return nodes_.empty(); }

  NodeId Start() const { return nodes_.front(); }
  NodeId End() const { return nodes_.back(); }

  const std::vector<NodeId>& nodes() const { return nodes_; }
  const std::vector<EdgeId>& edges() const { return edges_; }
  const std::vector<Traversal>& traversals() const { return traversals_; }

  /// Appends a step crossing `e` to `next`. The caller guarantees the step is
  /// admissible in the underlying graph.
  void Append(EdgeId e, Traversal t, NodeId next) {
    edges_.push_back(e);
    traversals_.push_back(t);
    nodes_.push_back(next);
  }

  /// Concatenates `tail` whose Start() must equal this path's End().
  void Concatenate(const Path& tail);

  /// The mirror path: same nodes and edges walked End() -> Start(), with
  /// each traversal direction flipped (undirected stays undirected). Used by
  /// the planner to restore pattern order after matching a reversed pattern.
  Path Reversed() const;

  /// True if no edge appears twice (the TRAIL restrictor, Fig. 7).
  bool IsTrail() const;
  /// True if no node appears twice (the ACYCLIC restrictor, Fig. 7).
  bool IsAcyclic() const;
  /// True if no node repeats except that first == last is allowed
  /// (the SIMPLE restrictor, Fig. 7).
  bool IsSimple() const;

  /// Renders as the paper's notation: path(a6,t5,a3,t2,a2).
  std::string ToString(const PropertyGraph& g) const;

  friend bool operator==(const Path& a, const Path& b) {
    return a.nodes_ == b.nodes_ && a.edges_ == b.edges_;
  }
  friend bool operator<(const Path& a, const Path& b) {
    if (a.nodes_ != b.nodes_) return a.nodes_ < b.nodes_;
    return a.edges_ < b.edges_;
  }

  size_t Hash() const;

 private:
  std::vector<NodeId> nodes_;
  std::vector<EdgeId> edges_;
  std::vector<Traversal> traversals_;
};

struct PathHash {
  size_t operator()(const Path& p) const { return p.Hash(); }
};

}  // namespace gpml

#endif  // GPML_GRAPH_PATH_H_
