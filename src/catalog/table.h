#ifndef GPML_CATALOG_TABLE_H_
#define GPML_CATALOG_TABLE_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/value.h"

namespace gpml {

using Row = std::vector<Value>;

/// A row-oriented relational table: the substrate over which SQL/PGQ defines
/// graph views (Figure 2) and into which GRAPH_TABLE projects pattern-match
/// results (Figure 9). Deliberately minimal — rows, schema validation,
/// deterministic sorting and pretty-printing — since the paper only needs
/// tables as the host data model, not a full SQL executor.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row after validating it against the schema.
  Status Append(Row row);
  /// Appends without validation (trusted internal producers).
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  /// Value at (row, column-name); NotFound for unknown columns.
  Result<Value> At(size_t row_index, const std::string& column) const;

  /// Lexicographic sort over all columns; makes result comparison and
  /// printing deterministic regardless of match enumeration order.
  void SortRows();

  /// Removes duplicate rows (set semantics); sorts as a side effect.
  void DeduplicateRows();

  /// Keeps only the first `n` rows (LIMIT application).
  void TruncateRows(size_t n) {
    if (rows_.size() > n) rows_.resize(n);
  }

  /// ASCII rendering with a header row, à la psql.
  std::string ToString() const;

  friend bool operator==(const Table& a, const Table& b) {
    return a.schema_ == b.schema_ && a.rows_ == b.rows_;
  }

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace gpml

#endif  // GPML_CATALOG_TABLE_H_
