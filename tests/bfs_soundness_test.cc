// Deterministic constructions that would expose unsound product-state
// pruning in the selector (BFS) route: two prefixes meeting at the same
// (instruction, node) whose *environments* or *restrictor memories* differ
// must not be merged when the difference affects future admissibility or
// result identity.

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "test_util.h"

namespace gpml {
namespace {

using testing_util::Paths;
using testing_util::Rows;

TEST(BfsSoundnessTest, IterationPredicateSeesOuterBinding) {
  // rich(w=10) and poor(w=1) both reach hub; only walks whose every edge
  // weight exceeds the START node's w may continue. Merging the two
  // prefixes at hub would either kill poor's continuation or wrongly allow
  // rich's.
  GraphBuilder b;
  b.AddNode("rich", {"N"}, {{"w", Value::Int(10)}});
  b.AddNode("poor", {"N"}, {{"w", Value::Int(1)}});
  b.AddNode("hub", {"N"}, {{"w", Value::Int(0)}});
  b.AddNode("sink", {"N"}, {{"w", Value::Int(0)}});
  b.AddDirectedEdge("er", "rich", "hub", {"T"}, {{"w", Value::Int(5)}});
  b.AddDirectedEdge("ep", "poor", "hub", {"T"}, {{"w", Value::Int(5)}});
  b.AddDirectedEdge("eh", "hub", "sink", {"T"}, {{"w", Value::Int(5)}});
  PropertyGraph g = std::move(std::move(b).Build()).value();

  std::vector<std::string> rows = Rows(
      g,
      "MATCH ALL SHORTEST (x)[()-[t:T]->() WHERE t.w > x.w]{1,2}(y)",
      "x, y");
  // poor: 1-step to hub, 2-step to sink. rich: nothing (5 > 10 fails).
  // hub: 1-step to sink (5 > 0 holds).
  EXPECT_EQ(rows, (std::vector<std::string>{"hub|sink", "poor|hub",
                                            "poor|sink"}));
}

TEST(BfsSoundnessTest, AllShortestKeepsDistinctBindingsOfEqualLength) {
  // Two parallel middle edges: both shortest paths must survive even
  // though the prefixes meet at the same (instruction, node).
  GraphBuilder b;
  b.AddNode("s", {"N"});
  b.AddNode("m", {"N"});
  b.AddNode("t", {"N"});
  b.AddDirectedEdge("in", "s", "m", {"T"});
  b.AddDirectedEdge("mid1", "m", "t", {"T"});
  b.AddDirectedEdge("mid2", "m", "t", {"T"});
  PropertyGraph g = std::move(std::move(b).Build()).value();
  std::vector<std::string> paths = Paths(
      g, "MATCH ALL SHORTEST p = (a WHERE SAME(a, a))-[:T]->{2}(c)");
  EXPECT_EQ(paths, (std::vector<std::string>{"path(s,in,m,mid1,t)",
                                             "path(s,in,m,mid2,t)"}));
}

TEST(BfsSoundnessTest, TrailMemoryInsideSelectorRoute) {
  // ALL SHORTEST TRAIL through a multigraph: the prefix using edge a must
  // not block the prefix using edge b from continuing over a.
  GraphBuilder b;
  b.AddNode("u", {"N"});
  b.AddNode("v", {"N"});
  b.AddDirectedEdge("a", "u", "v", {"T"});
  b.AddDirectedEdge("b", "u", "v", {"T"});
  b.AddDirectedEdge("back", "v", "u", {"T"});
  PropertyGraph g = std::move(std::move(b).Build()).value();
  std::vector<std::string> paths = Paths(
      g,
      "MATCH ALL SHORTEST TRAIL p = (x WHERE SAME(x, x))-[:T]->{3}(y)");
  // u->v->u->v using a,back,b and b,back,a (a,back,a repeats an edge).
  EXPECT_EQ(paths, (std::vector<std::string>{"path(u,a,v,back,u,b,v)",
                                             "path(u,b,v,back,u,a,v)"}));
}

TEST(BfsSoundnessTest, MultisetTagsSurviveSelector) {
  // |+| branches producing identical paths: provenance keeps both, and the
  // selector treats them as distinct results in the same partition under
  // ALL SHORTEST (both have minimal length).
  GraphBuilder b;
  b.AddNode("u", {"N"});
  b.AddNode("v", {"N"});
  b.AddDirectedEdge("e", "u", "v", {"T"});
  PropertyGraph g = std::move(std::move(b).Build()).value();
  Engine engine(g);
  Result<MatchOutput> out = engine.Match(
      "MATCH ALL SHORTEST (x)[-[:T]->(y) |+| -[:T]->(y)]");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->rows.size(), 2u);
}

TEST(BfsSoundnessTest, ConditionalBranchesNotMergedAcrossEnvironments) {
  // Union branches bind different variables; prefixes at the same node with
  // different bound variables must stay separate under ALL SHORTEST.
  GraphBuilder b;
  b.AddNode("s", {"S"});
  b.AddNode("m", {"M"});
  b.AddNode("t", {"T"});
  b.AddDirectedEdge("e1", "s", "m", {"A"});
  b.AddDirectedEdge("e2", "s", "m", {"B"});
  b.AddDirectedEdge("e3", "m", "t", {"A"});
  PropertyGraph g = std::move(std::move(b).Build()).value();
  std::vector<std::string> rows = Rows(
      g,
      "MATCH ALL SHORTEST (s:S)[-[x:A]->(m) | -[y:B]->(m)]-[:A]->(t:T)",
      "x, y, t");
  EXPECT_EQ(rows, (std::vector<std::string>{"NULL|e2|t", "e1|NULL|t"}));
}

}  // namespace
}  // namespace gpml
