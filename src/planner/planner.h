#ifndef GPML_PLANNER_PLANNER_H_
#define GPML_PLANNER_PLANNER_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/result.h"
#include "eval/binding.h"
#include "eval/matcher.h"
#include "planner/stats.h"

namespace gpml {
namespace planner {

/// Cost-model knobs. The defaults follow the classic System-R magic
/// selectivities; they only steer direction/order choices, never results.
struct PlannerConfig {
  double eq_selectivity = 0.1;       // x.prop = literal.
  double range_selectivity = 0.3;    // <, <=, >, >=.
  double neq_selectivity = 0.9;      // <>.
  double default_selectivity = 0.5;  // Anything else.
  /// Mirror the pattern only when the right end is better by this factor
  /// (hysteresis: ties and near-ties keep the written direction).
  double reverse_margin = 1.5;
  /// Index-backed seeding: when an anchor endpoint carries a label and an
  /// inline `var.prop = literal` conjunct, seed from the graph's
  /// (label, prop) = value hash index instead of the label scan. Always at
  /// most the label-scan seeds (cost-compared via eq_selectivity), and
  /// result-preserving: the restriction only drops starts the first node
  /// check would reject anyway. Off for differential comparison.
  bool use_seed_index = true;
  /// Exact equality histograms: when non-null, `var.prop = literal`
  /// selectivities over a labeled endpoint are computed from the graph's
  /// per-(label, key, value) property seed index counts instead of
  /// eq_selectivity, and index-backed seed estimates use the exact bucket
  /// size. Estimates only — never results. Null keeps the System-R
  /// constants (unit tests exercise the cost model without a graph).
  const PropertyGraph* histograms = nullptr;
};

/// Seed-cost estimate of one endpoint of a path pattern declaration.
struct SeedEstimate {
  bool has_node = false;    // Endpoint node pattern was extractable.
  double enumerated = 0;    // Start nodes the matcher would seed.
  double survivors = 0;     // Seeds surviving label + inline predicate.
  double fanout = 0;        // Expected first-hop expansion per survivor.
  std::string label;        // Label-index source ("" = full node scan).
  std::string index_prop;   // Non-empty: seed from the equality index
                            // (label, index_prop) = index_value.
  Value index_value;
  std::string index_param;  // Non-empty: the equality compares against the
                            // $parameter instead of a literal; the engine
                            // resolves the index value at bind time
                            // (index_value is unset in that case).

  /// The inline-predicate selectivity this estimate used — exact (from the
  /// property seed index histogram) when PlannerConfig::histograms resolved
  /// the predicate, else the System-R constant product. Rendered as `sel~`
  /// on EXPLAIN step lines.
  double selectivity = 1.0;

  bool has_index() const { return !index_prop.empty(); }

  /// The quantity plans are compared on.
  double Cost() const { return enumerated + survivors * (1.0 + fanout); }
};

/// The plan of one path pattern declaration.
struct DeclPlan {
  int decl_index = -1;        // Index in the normalized pattern's `paths`.
  bool reversed = false;      // Compile and run the mirrored pattern.
  int anchor_var = -1;        // Var id of the chosen anchor endpoint (-1 if
                              // not extractable).
  int seed_bound_var = -1;    // == anchor_var when earlier-planned decls bind
                              // it, so the engine seeds from those bindings.
  SeedEstimate anchor;        // Estimate of the chosen end.
  SeedEstimate other;         // Estimate of the rejected end.
  std::vector<int> join_vars; // Equi-join vars vs already-planned decls
                              // (ascending var id).
  PathPatternDecl decl;       // What to compile (mirrored when `reversed`).
};

/// An execution plan for a whole graph pattern: declarations in execution
/// order, each with direction, seed source, and join variables.
struct Plan {
  bool planner_used = false;  // false: declaration order as written, no
                              // reversal, no seed restriction.
  std::vector<DeclPlan> decls;
};

/// Statistics-driven planning: per declaration, estimates the seed cost of
/// both endpoints, anchors at the cheaper end (mirroring the pattern when
/// that end is the right one and mirroring is semantics-preserving), and
/// greedily orders declarations so ones sharing already-bound singletons run
/// later with restricted seed lists.
Result<Plan> PlanPattern(const GraphPattern& normalized, const VarTable& vars,
                         const GraphStats& stats,
                         const PlannerConfig& config = {});

/// The unplanned execution: declarations as written, forward direction,
/// label-index or full-scan seeding. Exactly the seed engine's behavior;
/// used when EngineOptions::use_planner is off and for differential testing.
Plan DirectPlan(const GraphPattern& normalized, const VarTable& vars);

/// The mirror image of a path pattern: elements in reverse order, edge
/// orientations flipped, subpatterns mirrored recursively.
PathPatternPtr ReversePathPattern(const PathPatternPtr& p);

/// True when running the mirrored pattern and un-mirroring the results is
/// guaranteed to produce the same match set: no multiset alternation (tag
/// provenance is order-sensitive), a deterministic selector (NONE, ALL
/// SHORTEST, SHORTEST k GROUP — the others pick direction-dependent
/// witnesses), and every inline predicate local to its own element (a
/// cross-element predicate could be evaluated before its inputs are bound in
/// the mirrored order).
bool ReversalSafe(const PathPatternDecl& decl);

/// Restores source order of a MatchSet produced by running a mirrored
/// program: reverses each binding's reduced sequence, path, and tags.
void UnreverseMatchSet(MatchSet* match);

/// Estimated number of nodes matching a label expression (exposed for unit
/// tests of the cost model).
double EstimateLabelCardinality(const LabelExprPtr& labels,
                                const GraphStats& stats);

/// Estimated fraction of elements surviving an inline predicate.
double PredicateSelectivity(const ExprPtr& where, const PlannerConfig& config);

/// Context for the histogram-aware overload: which endpoint the predicate
/// filters, so `var.prop = literal` can be resolved against the graph's
/// per-(label, key, value) seed-index counts.
struct SelectivityHints {
  std::string var;     // Endpoint variable name ("" = unknown).
  std::string label;   // Single seeding label ("" = full scan).
  double label_count = 0;  // Estimated elements carrying `label`.
};

/// PredicateSelectivity with exact equality estimates: when
/// config.histograms is set, hints.label is non-empty, and the conjunct is
/// `hints.var.prop = literal`, returns the exact bucket count from the
/// property seed index divided by hints.label_count (clamped to [0, 1]).
/// Every other shape recurses with the same hints and falls back to the
/// System-R constants.
double PredicateSelectivity(const ExprPtr& where, const PlannerConfig& config,
                            const SelectivityHints& hints);

/// Endpoint node patterns of a declaration pattern, when extractable
/// (concatenations, through parentheses and min>=1 quantifier heads).
const NodePattern* FirstNodeOf(const PathPattern& p);
const NodePattern* LastNodeOf(const PathPattern& p);

}  // namespace planner
}  // namespace gpml

#endif  // GPML_PLANNER_PLANNER_H_
