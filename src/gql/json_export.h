#ifndef GPML_GQL_JSON_EXPORT_H_
#define GPML_GQL_JSON_EXPORT_H_

#include <string>

#include "eval/engine.h"
#include "graph/property_graph.h"

namespace gpml {

/// JSON export of match results — the §7.1 Language Opportunity
/// ("Exporting a graph element or path binding to JSON", also floated in
/// §6.6 for raw multi-path bindings).
///
/// Shape:
/// {
///   "rows": [
///     {
///       "a":    {"kind":"node","name":"a4","labels":["Account"],
///                "properties":{"owner":"Jay","isBlocked":"yes"}},
///       "b":    [ {...}, {...} ],          // group variable: array
///       "p":    {"kind":"path","length":2,
///                "elements":["a6","t5","a3","t2","a2"]},
///       "miss": null                       // unbound conditional variable
///     }, ...
///   ]
/// }
/// Anonymous variables are omitted. Deterministic key order (variable id).
std::string ExportJson(const MatchOutput& output, const PropertyGraph& g);

/// One element as a JSON object (exposed for element-level export).
std::string ElementToJson(const PropertyGraph& g, const ElementRef& ref);

/// Escapes a string for inclusion in JSON output.
std::string JsonEscape(const std::string& s);

}  // namespace gpml

#endif  // GPML_GQL_JSON_EXPORT_H_
