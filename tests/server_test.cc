// End-to-end tests of the network query server (server/server.h) through
// the client library (server/client.h) and raw sockets: protocol happy
// paths with byte-identity to the in-process engine, cursor paging,
// structured errors, the session lifecycle edge cases (idle reaping with
// an open cursor, double-close, quota exhaustion), admission control
// backpressure, the HTTP observability endpoints, and graceful shutdown.
//
// Every test runs its own server on an ephemeral loopback port, so tests
// are independent and parallel-safe. The concurrent smoke test at the end
// is the one the TSan CI job runs to race-check the whole stack.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "eval/engine.h"
#include "gql/json_export.h"
#include "graph/generator.h"
#include "obs/query_stats.h"
#include "obs/slow_query_log.h"
#include "server/client.h"
#include "server/json.h"
#include "server/server.h"

namespace gpml {
namespace server {
namespace {

constexpr int kAccounts = 60;
constexpr char kOwnerQuery[] =
    "MATCH (x:Account WHERE x.owner = $owner)-[t:Transfer]->(y:Account)";
constexpr char kAllTransfers[] =
    "MATCH (x:Account)-[t:Transfer]->(y:Account)";

PropertyGraph TestGraph() {
  FraudGraphOptions options;
  options.num_accounts = kAccounts;
  return MakeFraudGraph(options);
}

Params Owner(int i) {
  return Params{{"owner", Value::String("u" + std::to_string(i))}};
}

/// A started server with the fraud test graph loaded; Stop on scope exit.
struct TestServer {
  explicit TestServer(ServerOptions options = {}) : server(options) {
    EXPECT_TRUE(server.AddGraph("fraud", TestGraph()).ok());
    Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~TestServer() { server.Stop(); }
  int port() const { return server.port(); }
  Server server;
};

Client MustConnect(const TestServer& srv, const std::string& tenant = "") {
  Result<Client> client = Client::Connect("127.0.0.1", srv.port(), tenant);
  EXPECT_TRUE(client.ok()) << client.status();
  return std::move(*client);
}

/// In-process oracle rows for one binding of kOwnerQuery (raw RowToJson
/// bytes — what the wire must carry verbatim).
std::vector<std::string> OracleRows(const PropertyGraph& g,
                                    const std::string& query,
                                    const Params& params) {
  Engine engine(g);
  Result<PreparedQuery> prepared = engine.Prepare(query);
  EXPECT_TRUE(prepared.ok()) << prepared.status();
  Result<MatchOutput> out = prepared->Execute(params);
  EXPECT_TRUE(out.ok()) << out.status();
  std::vector<std::string> rows;
  for (const ResultRow& row : out->rows) {
    rows.push_back(RowToJson(*out, row, g));
  }
  return rows;
}

/// Blocking HTTP/1.1 GET against the server's port; returns the whole
/// response (status line, headers, body). The server closes after one
/// response, so read-until-EOF frames it.
std::string HttpGet(int port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// --- lifecycle and happy paths ---------------------------------------------

TEST(ServerTest, StartStopAndEphemeralPort) {
  Server srv;
  ASSERT_TRUE(srv.AddGraph("g", TestGraph()).ok());
  ASSERT_TRUE(srv.Start().ok());
  EXPECT_GT(srv.port(), 0);
  srv.Stop();
  srv.Stop();  // Idempotent.
}

TEST(ServerTest, HelloListLoadUse) {
  TestServer srv;
  Client client = MustConnect(srv, "alice");
  EXPECT_GE(client.hello().protocol, 1);
  EXPECT_GT(client.hello().session_id, 0u);
  EXPECT_EQ(client.hello().tenant, "alice");
  EXPECT_TRUE(client.Ping().ok());

  Result<std::vector<std::string>> graphs = client.ListGraphs();
  ASSERT_TRUE(graphs.ok());
  ASSERT_EQ(graphs->size(), 1u);
  EXPECT_EQ((*graphs)[0], "fraud");

  // load_graph materializes a generator graph; a second load of the same
  // name reports created=false instead of clobbering it.
  Result<bool> created = client.LoadGraph("c10", "chain", "\"n\":10");
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_TRUE(*created);
  created = client.LoadGraph("c10", "chain", "\"n\":10");
  ASSERT_TRUE(created.ok());
  EXPECT_FALSE(*created);

  EXPECT_TRUE(client.UseGraph("c10").ok());
  EXPECT_TRUE(client.UseGraph("fraud").ok());
  Status missing = client.UseGraph("nope");
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  EXPECT_TRUE(client.Bye().ok());
}

TEST(ServerTest, ExecuteIsByteIdenticalToInProcessEngine) {
  PropertyGraph oracle_graph = TestGraph();
  TestServer srv;
  Client client = MustConnect(srv);
  ASSERT_TRUE(client.UseGraph("fraud").ok());
  Result<Client::PreparedInfo> prepared = client.Prepare(kOwnerQuery);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  ASSERT_EQ(prepared->params.size(), 1u);
  EXPECT_EQ(prepared->params[0], "owner");

  size_t nonempty = 0;
  for (int i = 0; i < kAccounts; ++i) {
    Result<ExecuteResult> got = client.Execute(prepared->stmt, Owner(i));
    ASSERT_TRUE(got.ok()) << got.status();
    std::vector<std::string> want =
        OracleRows(oracle_graph, kOwnerQuery, Owner(i));
    ASSERT_EQ(got->rows.size(), want.size()) << "owner u" << i;
    for (size_t r = 0; r < want.size(); ++r) {
      EXPECT_EQ(got->rows[r].raw, want[r]) << "owner u" << i << " row " << r;
    }
    nonempty += want.empty() ? 0 : 1;
  }
  EXPECT_GT(nonempty, 0u) << "workload must actually produce rows";
}

TEST(ServerTest, ExplainAndStats) {
  TestServer srv;
  Client client = MustConnect(srv);
  ASSERT_TRUE(client.UseGraph("fraud").ok());
  Result<std::string> plan = client.Explain(kAllTransfers);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->empty());

  Result<Client::RawResponse> stats = client.RoundTrip("{\"op\":\"stats\"}");
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->parsed.Find("ok")->bool_v);
  ASSERT_NE(stats->parsed.Find("sessions"), nullptr);
  EXPECT_GE(stats->parsed.Find("sessions")->int_v, 1);
}

TEST(ServerTest, CursorPagingDrainsExactlyOnce) {
  PropertyGraph oracle_graph = TestGraph();
  std::vector<std::string> want = OracleRows(oracle_graph, kAllTransfers, {});
  ASSERT_GT(want.size(), 8u) << "need multiple pages";

  TestServer srv;
  Client client = MustConnect(srv);
  ASSERT_TRUE(client.UseGraph("fraud").ok());
  Result<Client::PreparedInfo> prepared = client.Prepare(kAllTransfers);
  ASSERT_TRUE(prepared.ok());

  Result<int64_t> cursor = client.Open(prepared->stmt);
  ASSERT_TRUE(cursor.ok());
  std::vector<std::string> got;
  bool done = false;
  while (!done) {
    Result<ExecuteResult> page = client.Fetch(*cursor, 7);
    ASSERT_TRUE(page.ok()) << page.status();
    EXPECT_LE(page->rows.size(), 7u);
    for (const ClientRow& row : page->rows) got.push_back(row.raw);
    done = page->done;
    if (!done) EXPECT_EQ(page->rows.size(), 7u);
  }
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
  EXPECT_TRUE(client.CloseCursor(*cursor).ok());
}

TEST(ServerTest, OpenWithLimitReportsHitLimit) {
  TestServer srv;
  Client client = MustConnect(srv);
  ASSERT_TRUE(client.UseGraph("fraud").ok());
  Result<Client::PreparedInfo> prepared = client.Prepare(kAllTransfers);
  ASSERT_TRUE(prepared.ok());
  Result<int64_t> cursor = client.Open(prepared->stmt, {}, 5);
  ASSERT_TRUE(cursor.ok());
  size_t total = 0;
  bool hit_limit = false;
  for (bool done = false; !done;) {
    Result<ExecuteResult> page = client.Fetch(*cursor, 3);
    ASSERT_TRUE(page.ok());
    total += page->rows.size();
    done = page->done;
    hit_limit = hit_limit || page->hit_limit;
  }
  EXPECT_EQ(total, 5u);
  EXPECT_TRUE(hit_limit);
}

// --- structured errors -----------------------------------------------------

TEST(ServerTest, ErrorsCarryStableCodes) {
  TestServer srv;
  Client client = MustConnect(srv);
  ASSERT_TRUE(client.UseGraph("fraud").ok());

  Result<Client::PreparedInfo> bad = client.Prepare("MATCH (((");
  EXPECT_EQ(bad.status().code(), StatusCode::kSyntaxError);

  Result<ExecuteResult> ghost = client.Execute(12345);
  EXPECT_EQ(ghost.status().code(), StatusCode::kNotFound);

  // Missing a $param the statement requires.
  Result<Client::PreparedInfo> prepared = client.Prepare(kOwnerQuery);
  ASSERT_TRUE(prepared.ok());
  Result<ExecuteResult> unbound = client.Execute(prepared->stmt);
  EXPECT_FALSE(unbound.ok());

  // The connection survives every one of those errors.
  EXPECT_TRUE(client.Ping().ok());
}

// Satellite edge case: double-closing a statement (and a cursor) is a
// structured NOT_FOUND on the second close, never a disconnect.
TEST(ServerTest, DoubleCloseIsStructuredNotFound) {
  TestServer srv;
  Client client = MustConnect(srv);
  ASSERT_TRUE(client.UseGraph("fraud").ok());
  Result<Client::PreparedInfo> prepared = client.Prepare(kAllTransfers);
  ASSERT_TRUE(prepared.ok());
  Result<int64_t> cursor = client.Open(prepared->stmt);
  ASSERT_TRUE(cursor.ok());

  EXPECT_TRUE(client.CloseCursor(*cursor).ok());
  Status again = client.CloseCursor(*cursor);
  EXPECT_EQ(again.code(), StatusCode::kNotFound);

  EXPECT_TRUE(client.CloseStatement(prepared->stmt).ok());
  again = client.CloseStatement(prepared->stmt);
  EXPECT_EQ(again.code(), StatusCode::kNotFound);

  // Closing the statement invalidated nothing else: session still works.
  EXPECT_TRUE(client.Ping().ok());
  Result<Client::PreparedInfo> fresh = client.Prepare(kAllTransfers);
  EXPECT_TRUE(fresh.ok());
}

TEST(ServerTest, MalformedRequestsGetBadRequestAndConnectionSurvives) {
  TestServer srv;
  Client client = MustConnect(srv);

  Result<Client::RawResponse> bad_json = client.RoundTrip("{not json");
  ASSERT_TRUE(bad_json.ok()) << "transport must survive";
  EXPECT_FALSE(bad_json->parsed.Find("ok")->bool_v);

  Result<Client::RawResponse> bad_op =
      client.RoundTrip("{\"op\":\"warp_drive\"}");
  ASSERT_TRUE(bad_op.ok());
  EXPECT_FALSE(bad_op->parsed.Find("ok")->bool_v);
  EXPECT_EQ(bad_op->parsed.Find("error")->Find("reason")->string_v,
            "BAD_REQUEST");

  Result<Client::RawResponse> no_op = client.RoundTrip("{\"id\":1}");
  ASSERT_TRUE(no_op.ok());
  EXPECT_FALSE(no_op->parsed.Find("ok")->bool_v);

  EXPECT_TRUE(client.Ping().ok());
}

// --- session lifecycle edge cases (satellite 4) ----------------------------

ServerOptions FastReapOptions() {
  ServerOptions options;
  options.idle_timeout_ms = 60;
  options.reap_interval_ms = 10;
  return options;
}

// A session idle past the timeout is expired in place — its open cursor
// is dropped, the next request gets SESSION_EXPIRED (a structured error,
// not a disconnect), and a fresh hello on the same connection recovers.
TEST(ServerTest, IdleReapExpiresOpenCursorAndHelloRecovers) {
  TestServer srv(FastReapOptions());
  Client client = MustConnect(srv, "sleepy");
  ASSERT_TRUE(client.UseGraph("fraud").ok());
  Result<Client::PreparedInfo> prepared = client.Prepare(kAllTransfers);
  ASSERT_TRUE(prepared.ok());
  Result<int64_t> cursor = client.Open(prepared->stmt);
  ASSERT_TRUE(cursor.ok());
  Result<ExecuteResult> first = client.Fetch(*cursor, 4);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->rows.empty());

  // Let the reaper find the idle session (with its cursor still open).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  Result<ExecuteResult> after = client.Fetch(*cursor, 4);
  ASSERT_FALSE(after.ok()) << "expired session must not serve cursors";
  EXPECT_EQ(client.last_reason(), "SESSION_EXPIRED");

  // Still connected: a new hello re-admits and the session works again.
  Result<Client::RawResponse> rehello =
      client.RoundTrip("{\"op\":\"hello\",\"tenant\":\"sleepy\"}");
  ASSERT_TRUE(rehello.ok());
  EXPECT_TRUE(rehello->parsed.Find("ok")->bool_v);
  ASSERT_TRUE(client.UseGraph("fraud").ok());
  Result<Client::PreparedInfo> again = client.Prepare(kAllTransfers);
  ASSERT_TRUE(again.ok());
  Result<ExecuteResult> rows = client.Execute(again->stmt);
  ASSERT_TRUE(rows.ok());
  EXPECT_FALSE(rows->rows.empty());
}

// An in-flight request fences its session from the reaper: a fetch that
// takes longer than the idle timeout must not have the cursor destroyed
// under it. debug_sleep stands in for a slow execution.
TEST(ServerTest, InFlightRequestIsNeverReaped) {
  ServerOptions options;
  options.idle_timeout_ms = 150;
  options.reap_interval_ms = 10;
  options.enable_debug_ops = true;
  TestServer srv(options);
  Client client = MustConnect(srv);
  // Sleeps 4x the idle timeout on the worker pool while holding the
  // session in flight; must come back OK, and the session must still be
  // usable immediately after.
  EXPECT_TRUE(client.DebugSleep(600).ok());
  EXPECT_TRUE(client.UseGraph("fraud").ok());
}

// Satellite edge case: a tenant at max_sessions gets a structured
// RESOURCE_EXHAUSTED with reason TENANT_SESSIONS — and a slot freed by
// closing the first connection admits the next.
TEST(ServerTest, SessionQuotaIsStructuredError) {
  ServerOptions options;
  options.default_quota.max_sessions = 1;
  TestServer srv(options);

  Result<Client> first = Client::Connect("127.0.0.1", srv.port(), "tight");
  ASSERT_TRUE(first.ok());

  Result<Client> second = Client::Connect("127.0.0.1", srv.port(), "tight");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second.status().message().find("TENANT_SESSIONS"),
            std::string::npos);

  first->Bye();
  first->Close();
  // The slot comes back (poll briefly: teardown is asynchronous).
  bool admitted = false;
  for (int i = 0; i < 100 && !admitted; ++i) {
    Result<Client> retry = Client::Connect("127.0.0.1", srv.port(), "tight");
    admitted = retry.ok();
    if (!admitted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(admitted) << "closing the first session must free its slot";
}

// A tenant at max_concurrent has further queries refused with
// TENANT_CONCURRENCY while one is still running.
TEST(ServerTest, ConcurrencyQuotaRefusesSecondQuery) {
  ServerOptions options;
  options.enable_debug_ops = true;
  options.default_quota.max_concurrent = 1;
  TestServer srv(options);

  Client sleeper = MustConnect(srv, "busy");
  Client prober = MustConnect(srv, "busy");
  ASSERT_TRUE(prober.UseGraph("fraud").ok());
  Result<Client::PreparedInfo> prepared = prober.Prepare(kAllTransfers);
  ASSERT_TRUE(prepared.ok());

  std::thread holder([&sleeper] { sleeper.DebugSleep(2000); });
  // Wait until the server reports the sleeper's query in flight (stats is
  // scoped to the caller's tenant, which both clients share).
  bool in_flight = false;
  for (int i = 0; i < 200 && !in_flight; ++i) {
    Result<Client::RawResponse> stats =
        prober.RoundTrip("{\"op\":\"stats\"}");
    ASSERT_TRUE(stats.ok());
    const JsonValue* tenant = stats->parsed.Find("tenant");
    in_flight =
        tenant != nullptr && tenant->Find("in_flight")->int_v >= 1;
    if (!in_flight) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(in_flight) << "sleeper never showed up in flight";

  Result<ExecuteResult> refused = prober.Execute(prepared->stmt);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(prober.last_reason(), "TENANT_CONCURRENCY");
  holder.join();

  // With the slot free again, the same statement executes fine.
  Result<ExecuteResult> ok = prober.Execute(prepared->stmt);
  EXPECT_TRUE(ok.ok()) << ok.status();
}

// A tenant that spent its cumulative step budget is refused with
// TENANT_STEP_BUDGET — the quota -> SharedBudget mapping's terminal state.
TEST(ServerTest, StepBudgetExhaustionIsStructuredError) {
  ServerOptions options;
  options.default_quota.max_total_steps = 200;
  TestServer srv(options);
  Client client = MustConnect(srv, "meter");
  ASSERT_TRUE(client.UseGraph("fraud").ok());
  Result<Client::PreparedInfo> prepared = client.Prepare(kAllTransfers);
  ASSERT_TRUE(prepared.ok());

  // Each admitted execution charges real steps against the cumulative
  // budget (the last admitted one may itself die mid-query when ApplyQuota
  // tightens its per-query cap to the dwindling remainder — that is the
  // in-query flavor, reason-less). Eventually admission itself refuses
  // with the structured TENANT_STEP_BUDGET.
  bool budget_refused = false;
  for (int i = 0; i < 50 && !budget_refused; ++i) {
    Result<ExecuteResult> result = client.Execute(prepared->stmt);
    if (!result.ok() && client.last_reason() == "TENANT_STEP_BUDGET") {
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      budget_refused = true;
    }
  }
  EXPECT_TRUE(budget_refused) << "cumulative budget never tripped";

  // Statement-less ops still work: the session is alive, only query
  // admission is refused.
  EXPECT_TRUE(client.Ping().ok());
}

// --- backpressure ----------------------------------------------------------

// With one worker and a one-slot queue, a third simultaneous query (one
// running, one queued) bounces with SERVER_SATURATED instead of queueing
// unboundedly.
TEST(ServerTest, SaturatedPoolRejectsWithStructuredError) {
  ServerOptions options;
  options.enable_debug_ops = true;
  options.worker_threads = 1;
  options.max_queue = 1;
  TestServer srv(options);

  Client running = MustConnect(srv, "hog1");
  Client queued = MustConnect(srv, "hog2");
  Client prober = MustConnect(srv, "victim");
  ASSERT_TRUE(prober.UseGraph("fraud").ok());
  Result<Client::PreparedInfo> prepared = prober.Prepare(kAllTransfers);
  ASSERT_TRUE(prepared.ok());

  // Stagger the sleepers: the second submit only lands in the queue once
  // the first has been dequeued by the worker (Submit rejects whenever the
  // queue itself is full, even if a worker is about to drain it).
  std::thread holder1([&running] { running.DebugSleep(1500); });
  bool active = false;
  for (int i = 0; i < 400 && !active; ++i) {
    Result<Client::RawResponse> stats =
        prober.RoundTrip("{\"op\":\"stats\"}");
    ASSERT_TRUE(stats.ok());
    active = stats->parsed.Find("active")->int_v >= 1;
    if (!active) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(active) << "first sleeper never occupied the worker";

  std::thread holder2([&queued] { queued.DebugSleep(1500); });
  bool full = false;
  for (int i = 0; i < 400 && !full; ++i) {
    Result<Client::RawResponse> stats =
        prober.RoundTrip("{\"op\":\"stats\"}");
    ASSERT_TRUE(stats.ok());
    full = stats->parsed.Find("active")->int_v >= 1 &&
           stats->parsed.Find("queue_depth")->int_v >= 1;
    if (!full) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(full) << "second sleeper never landed in the queue";

  Result<ExecuteResult> refused = prober.Execute(prepared->stmt);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(prober.last_reason(), "SERVER_SATURATED");
  holder1.join();
  holder2.join();

  Result<ExecuteResult> ok = prober.Execute(prepared->stmt);
  EXPECT_TRUE(ok.ok()) << ok.status();
}

// --- observability endpoints -----------------------------------------------

TEST(ServerTest, HttpMetricsEndpointServesPrometheusAggregate) {
  TestServer srv;
  // Generate some traffic so the counters are non-zero.
  Client client = MustConnect(srv);
  ASSERT_TRUE(client.UseGraph("fraud").ok());
  Result<Client::PreparedInfo> prepared = client.Prepare(kAllTransfers);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(client.Execute(prepared->stmt).ok());

  std::string response = HttpGet(srv.port(), "/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("gpml_server_requests_total"), std::string::npos);
  EXPECT_NE(response.find("gpml_server_queries_total"), std::string::npos);
  EXPECT_NE(response.find("gpml_server_connections_total"),
            std::string::npos);

  // The in-band metrics op serves the same rendering.
  Result<std::string> text = client.Metrics();
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("gpml_server_queries_total"), std::string::npos);

  EXPECT_NE(HttpGet(srv.port(), "/teapot").find("404"), std::string::npos);
}

TEST(ServerTest, SlowQueryEndpointCapturesAndFiltersByGraph) {
  obs::SlowQueryLog log;
  ServerOptions options;
  options.engine.slow_query_ms = 0;  // Capture everything.
  options.engine.slow_log = &log;
  TestServer srv(options);
  Client client = MustConnect(srv);
  ASSERT_TRUE(client.UseGraph("fraud").ok());
  Result<Client::PreparedInfo> prepared = client.Prepare(kAllTransfers);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(client.Execute(prepared->stmt).ok());

  // In-band op, filtered to the graph we queried.
  Result<std::string> records = client.SlowQueries("fraud");
  ASSERT_TRUE(records.ok()) << records.status();
  Result<JsonValue> parsed = ParseJson(*records);
  ASSERT_TRUE(parsed.ok()) << *records;
  ASSERT_TRUE(parsed->is_array());
  EXPECT_FALSE(parsed->array_v.empty());
  EXPECT_EQ(parsed->array_v[0].Find("graph")->string_v, "fraud");

  // A graph that never ran anything has no records.
  ASSERT_TRUE(client.LoadGraph("idle", "chain", "\"n\":4").ok());
  Result<std::string> idle = client.SlowQueries("idle");
  ASSERT_TRUE(idle.ok());
  Result<JsonValue> idle_parsed = ParseJson(*idle);
  ASSERT_TRUE(idle_parsed.ok());
  EXPECT_TRUE(idle_parsed->array_v.empty());

  // Raw HTTP flavor of the same endpoint.
  std::string response = HttpGet(srv.port(), "/slow_queries?graph=fraud");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"fingerprint\""), std::string::npos);
}

TEST(ServerTest, QueryStatsOpAndHttpEndpointFilterAndSort) {
  obs::QueryStatsStore store;
  ServerOptions options;
  options.engine.query_stats = &store;  // Hermetic: no global-store bleed.
  TestServer srv(options);
  Client client = MustConnect(srv, "acme");
  ASSERT_TRUE(client.UseGraph("fraud").ok());
  Result<Client::PreparedInfo> all = client.Prepare(kAllTransfers);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(client.Execute(all->stmt).ok());
  ASSERT_TRUE(client.Execute(all->stmt).ok());
  Result<Client::PreparedInfo> owner = client.Prepare(kOwnerQuery);
  ASSERT_TRUE(owner.ok());
  ASSERT_TRUE(client.Execute(owner->stmt, Owner(1)).ok());

  // In-band op, filtered to the graph we queried.
  Result<std::string> stats = client.QueryStats("fraud");
  ASSERT_TRUE(stats.ok()) << stats.status();
  Result<JsonValue> parsed = ParseJson(*stats);
  ASSERT_TRUE(parsed.ok()) << *stats;
  ASSERT_TRUE(parsed->is_array());
  ASSERT_EQ(parsed->array_v.size(), 2u);
  // Sorted by total time descending.
  EXPECT_GE(parsed->array_v[0].Find("total_ms")->AsDouble(),
            parsed->array_v[1].Find("total_ms")->AsDouble());
  for (const JsonValue& entry : parsed->array_v) {
    EXPECT_EQ(entry.Find("graph")->string_v, "fraud");
    EXPECT_EQ(entry.Find("tenant")->string_v, "acme");
    EXPECT_NE(entry.Find("plan_hash")->AsDouble(), 0);
    bool is_owner = entry.Find("fingerprint")->string_v.find("owner") !=
                    std::string::npos;
    EXPECT_EQ(entry.Find("calls")->AsDouble(), is_owner ? 1 : 2);
  }

  // Tenant filter: a tenant that never ran anything has no entries.
  Result<std::string> mine = client.QueryStats("", "acme");
  ASSERT_TRUE(mine.ok());
  Result<JsonValue> mine_parsed = ParseJson(*mine);
  ASSERT_TRUE(mine_parsed.ok());
  EXPECT_EQ(mine_parsed->array_v.size(), 2u);
  Result<std::string> nobody = client.QueryStats("", "nobody");
  ASSERT_TRUE(nobody.ok());
  Result<JsonValue> nobody_parsed = ParseJson(*nobody);
  ASSERT_TRUE(nobody_parsed.ok());
  EXPECT_TRUE(nobody_parsed->array_v.empty());

  // An unknown graph is a structured error, not an empty list.
  EXPECT_FALSE(client.QueryStats("missing").ok());

  // Raw HTTP flavor of the same endpoint.
  std::string response = HttpGet(srv.port(), "/query_stats?graph=fraud");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"plan_hash\""), std::string::npos);
  EXPECT_NE(response.find("\"p95_ms\""), std::string::npos);
  EXPECT_NE(HttpGet(srv.port(), "/query_stats?graph=missing").find("404"),
            std::string::npos);
}

// The timing object must account for queue wait from enqueue (not worker
// pickup): saturate the single worker, then check the queued request's
// queue_ms + exec_ms against its client-observed wall time.
TEST(ServerTest, TimingSeparatesQueueWaitFromExecution) {
  ServerOptions options;
  options.enable_debug_ops = true;
  options.worker_threads = 1;
  TestServer srv(options);
  Client holder = MustConnect(srv);
  Client prober = MustConnect(srv);

  std::thread occupy([&holder] { holder.DebugSleep(600); });
  // Let the holder's sleep reach the lone worker before probing.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  auto start = std::chrono::steady_clock::now();
  Result<Client::RawResponse> response =
      prober.RoundTrip("{\"op\":\"debug_sleep\",\"ms\":200}");
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  occupy.join();
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->parsed.Find("ok")->bool_v) << response->raw;
  const JsonValue* timing = response->parsed.Find("timing");
  ASSERT_NE(timing, nullptr) << response->raw;
  double queue_ms = timing->Find("queue_ms")->AsDouble();
  double exec_ms = timing->Find("exec_ms")->AsDouble();
  // The probe sat behind ~450ms of the holder's sleep, then slept 200ms
  // itself. Wide margins: CI boxes stall, but the invariants hold.
  EXPECT_GE(queue_ms, 100.0) << response->raw;
  EXPECT_GE(exec_ms, 180.0) << response->raw;
  EXPECT_LE(queue_ms + exec_ms, wall_ms + 1.0)
      << "timing cannot exceed the client-observed wall time";
  EXPECT_GE(queue_ms + exec_ms, wall_ms - 150.0)
      << "queue + exec should account for nearly all of the wall time";
}

TEST(ServerTest, SlowQueryRecordsCarryTenantAndTraceId) {
  obs::SlowQueryLog log;
  ServerOptions options;
  options.engine.slow_query_ms = 0;  // Capture everything.
  options.engine.slow_log = &log;
  TestServer srv(options);
  Client client = MustConnect(srv, "acme");
  ASSERT_TRUE(client.UseGraph("fraud").ok());
  Result<Client::PreparedInfo> prepared = client.Prepare(kAllTransfers);
  ASSERT_TRUE(prepared.ok());
  Result<Client::RawResponse> executed = client.RoundTrip(
      "{\"op\":\"execute\",\"stmt\":" + std::to_string(prepared->stmt) +
      ",\"trace_id\":\"req-42\"}");
  ASSERT_TRUE(executed.ok());
  ASSERT_TRUE(executed->parsed.Find("ok")->bool_v) << executed->raw;

  Result<std::string> records = client.SlowQueries("fraud");
  ASSERT_TRUE(records.ok()) << records.status();
  Result<JsonValue> parsed = ParseJson(*records);
  ASSERT_TRUE(parsed.ok()) << *records;
  ASSERT_FALSE(parsed->array_v.empty());
  const JsonValue& record = parsed->array_v[0];
  EXPECT_EQ(record.Find("tenant")->string_v, "acme");
  EXPECT_EQ(record.Find("trace_id")->string_v, "req-42");
}

TEST(ServerTest, PerTenantMetricFamiliesAreExported) {
  ServerOptions options;
  options.default_quota.max_sessions = 1;
  TestServer srv(options);
  Client acme = MustConnect(srv, "acme");
  ASSERT_TRUE(acme.UseGraph("fraud").ok());
  Result<Client::PreparedInfo> prepared = acme.Prepare(kAllTransfers);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(acme.Execute(prepared->stmt).ok());
  // A second acme connection trips the session quota -> refusal counter.
  EXPECT_FALSE(Client::Connect("127.0.0.1", srv.port(), "acme").ok());

  Result<std::string> text = acme.Metrics();
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("# TYPE gpml_tenant_steps_total counter"),
            std::string::npos)
      << *text;
  EXPECT_NE(text->find("gpml_tenant_steps_total{tenant=\"acme\"} "),
            std::string::npos)
      << *text;
  EXPECT_NE(text->find("gpml_tenant_active_sessions{tenant=\"acme\"} 1"),
            std::string::npos)
      << *text;
  EXPECT_NE(text->find("gpml_tenant_refusals_total{tenant=\"acme\","
                       "reason=\"TENANT_SESSIONS\"} 1"),
            std::string::npos)
      << *text;
  // Steps were actually charged, not just registered at zero.
  size_t pos = text->find("gpml_tenant_steps_total{tenant=\"acme\"} ");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_NE((*text)[pos + std::string(
                              "gpml_tenant_steps_total{tenant=\"acme\"} ")
                              .size()],
            '0')
      << *text;
}

// --- shutdown and concurrency ----------------------------------------------

TEST(ServerTest, GracefulStopDrainsWithOpenCursor) {
  TestServer srv;
  Client client = MustConnect(srv);
  ASSERT_TRUE(client.UseGraph("fraud").ok());
  Result<Client::PreparedInfo> prepared = client.Prepare(kAllTransfers);
  ASSERT_TRUE(prepared.ok());
  Result<int64_t> cursor = client.Open(prepared->stmt);
  ASSERT_TRUE(cursor.ok());
  Result<ExecuteResult> page = client.Fetch(*cursor, 4);
  ASSERT_TRUE(page.ok());

  srv.server.Stop();  // Must not hang on the open connection.

  Result<ExecuteResult> after = client.Fetch(*cursor, 4);
  EXPECT_FALSE(after.ok()) << "stopped server must not serve fetches";
}

// The TSan target: several clients hammering one server concurrently,
// with every response checked against the in-process oracle.
TEST(ServerTest, ConcurrentClientsStayByteIdentical) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  PropertyGraph oracle_graph = TestGraph();
  std::vector<std::vector<std::string>> expected;
  expected.reserve(kAccounts);
  for (int i = 0; i < kAccounts; ++i) {
    expected.push_back(OracleRows(oracle_graph, kOwnerQuery, Owner(i)));
  }

  TestServer srv;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &srv, &expected, &failures] {
      Result<Client> client =
          Client::Connect("127.0.0.1", srv.port(), "smoke");
      if (!client.ok() || !client->UseGraph("fraud").ok()) {
        failures[t] = kPerThread;
        return;
      }
      Result<Client::PreparedInfo> prepared = client->Prepare(kOwnerQuery);
      if (!prepared.ok()) {
        failures[t] = kPerThread;
        return;
      }
      for (int i = 0; i < kPerThread; ++i) {
        int owner = (t * kPerThread + i) % kAccounts;
        Result<ExecuteResult> got =
            client->Execute(prepared->stmt, Owner(owner));
        if (!got.ok() || got->rows.size() != expected[owner].size()) {
          ++failures[t];
          continue;
        }
        for (size_t r = 0; r < expected[owner].size(); ++r) {
          if (got->rows[r].raw != expected[owner][r]) {
            ++failures[t];
            break;
          }
        }
      }
      client->Bye();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "client thread " << t;
  }
}

}  // namespace
}  // namespace server
}  // namespace gpml
