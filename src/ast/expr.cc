#include "ast/expr.h"

#include <algorithm>

#include "common/strings.h"

namespace gpml {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNeq: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
  }
  return "?";
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
    case AggFunc::kListAgg: return "LISTAGG";
  }
  return "?";
}

namespace {

std::shared_ptr<Expr> Make(Expr::Kind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}

// Precedence for printing: OR(1) < AND(2) < NOT(3) < cmp(4) < add(5) <
// mul(6) < atoms(7).
int Precedence(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kBinary:
      switch (e.op) {
        case BinaryOp::kOr: return 1;
        case BinaryOp::kAnd: return 2;
        case BinaryOp::kEq: case BinaryOp::kNeq: case BinaryOp::kLt:
        case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe:
          return 4;
        case BinaryOp::kAdd: case BinaryOp::kSub: return 5;
        case BinaryOp::kMul: case BinaryOp::kDiv: return 6;
      }
      return 7;
    case Expr::Kind::kNot: return 3;
    default: return 7;
  }
}

std::string PrintChild(const ExprPtr& child, int parent_prec) {
  std::string s = child->ToString();
  if (Precedence(*child) < parent_prec) return "(" + s + ")";
  return s;
}

std::string QuoteIfString(const Value& v) {
  if (v.is_string()) return "'" + v.string_value() + "'";
  return v.ToString();
}

}  // namespace

ExprPtr Expr::WithSpan(ExprPtr e, SourceSpan span) {
  // The parser calls this straight after a factory, while the node is still
  // uniquely owned; const_cast is confined to that construction window.
  if (e != nullptr) const_cast<Expr*>(e.get())->span = span;
  return e;
}

ExprPtr Expr::Lit(Value v) {
  auto e = Make(Kind::kLiteral);
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Param(std::string name) {
  auto e = Make(Kind::kParam);
  e->var = std::move(name);
  return e;
}

ExprPtr Expr::Var(std::string name) {
  auto e = Make(Kind::kVarRef);
  e->var = std::move(name);
  return e;
}

ExprPtr Expr::Prop(std::string var, std::string property) {
  auto e = Make(Kind::kPropertyAccess);
  e->var = std::move(var);
  e->property = std::move(property);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = Make(Kind::kBinary);
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

ExprPtr Expr::Not(ExprPtr sub) {
  auto e = Make(Kind::kNot);
  e->lhs = std::move(sub);
  return e;
}

ExprPtr Expr::IsNull(ExprPtr sub, bool negated) {
  auto e = Make(Kind::kIsNull);
  e->lhs = std::move(sub);
  e->negated = negated;
  return e;
}

ExprPtr Expr::Aggregate(AggFunc f, ExprPtr arg, bool distinct,
                        std::string separator) {
  auto e = Make(Kind::kAggregate);
  e->agg = f;
  e->arg = std::move(arg);
  e->distinct = distinct;
  e->separator = std::move(separator);
  return e;
}

ExprPtr Expr::IsDirected(std::string edge_var) {
  auto e = Make(Kind::kIsDirected);
  e->var = std::move(edge_var);
  return e;
}

ExprPtr Expr::IsSourceOf(std::string node_var, std::string edge_var) {
  auto e = Make(Kind::kIsSourceOf);
  e->var = std::move(node_var);
  e->var2 = std::move(edge_var);
  return e;
}

ExprPtr Expr::IsDestinationOf(std::string node_var, std::string edge_var) {
  auto e = Make(Kind::kIsDestinationOf);
  e->var = std::move(node_var);
  e->var2 = std::move(edge_var);
  return e;
}

ExprPtr Expr::Same(std::vector<std::string> vars) {
  auto e = Make(Kind::kSame);
  e->vars = std::move(vars);
  return e;
}

ExprPtr Expr::AllDifferent(std::vector<std::string> vars) {
  auto e = Make(Kind::kAllDifferent);
  e->vars = std::move(vars);
  return e;
}

ExprPtr Expr::PathLength(std::string path_var) {
  auto e = Make(Kind::kPathLength);
  e->var = std::move(path_var);
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral: return QuoteIfString(literal);
    case Kind::kParam: return "$" + var;
    case Kind::kVarRef: return var;
    case Kind::kPropertyAccess: return var + "." + property;
    case Kind::kBinary: {
      int prec = Precedence(*this);
      // Left-associative: right child needs parens at equal precedence.
      return PrintChild(lhs, prec) + " " + BinaryOpName(op) + " " +
             PrintChild(rhs, prec + 1);
    }
    case Kind::kNot: return "NOT " + PrintChild(lhs, 4);
    case Kind::kIsNull:
      return PrintChild(lhs, 7) + (negated ? " IS NOT NULL" : " IS NULL");
    case Kind::kAggregate: {
      std::string inner = distinct ? "DISTINCT " : "";
      inner += arg->ToString();
      if (agg == AggFunc::kListAgg) inner += ", '" + separator + "'";
      return std::string(AggFuncName(agg)) + "(" + inner + ")";
    }
    case Kind::kIsDirected: return var + " IS DIRECTED";
    case Kind::kIsSourceOf: return var + " IS SOURCE OF " + var2;
    case Kind::kIsDestinationOf: return var + " IS DESTINATION OF " + var2;
    case Kind::kSame: return "SAME(" + Join(vars, ", ") + ")";
    case Kind::kAllDifferent:
      return "ALL_DIFFERENT(" + Join(vars, ", ") + ")";
    case Kind::kPathLength: return "PATH_LENGTH(" + var + ")";
  }
  return "?";
}

bool Expr::Equal(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  return a->literal == b->literal && a->var == b->var &&
         a->property == b->property && a->op == b->op &&
         a->negated == b->negated && a->agg == b->agg &&
         a->distinct == b->distinct && a->separator == b->separator &&
         a->var2 == b->var2 && a->vars == b->vars && Equal(a->lhs, b->lhs) &&
         Equal(a->rhs, b->rhs) && Equal(a->arg, b->arg);
}

bool Expr::ContainsAggregate() const {
  if (kind == Kind::kAggregate) return true;
  for (const ExprPtr* child : {&lhs, &rhs, &arg}) {
    if (*child != nullptr && (*child)->ContainsAggregate()) return true;
  }
  return false;
}

void Expr::CollectVariables(std::vector<std::string>* out) const {
  switch (kind) {
    case Kind::kVarRef:
    case Kind::kPropertyAccess:
    case Kind::kIsDirected:
    case Kind::kPathLength:
      out->push_back(var);
      break;
    case Kind::kIsSourceOf:
    case Kind::kIsDestinationOf:
      out->push_back(var);
      out->push_back(var2);
      break;
    case Kind::kSame:
    case Kind::kAllDifferent:
      out->insert(out->end(), vars.begin(), vars.end());
      break;
    default:
      break;
  }
  for (const ExprPtr* child : {&lhs, &rhs, &arg}) {
    if (*child != nullptr) (*child)->CollectVariables(out);
  }
}

}  // namespace gpml
