#include "gql/session.h"

#include <gtest/gtest.h>

#include "graph/sample_graph.h"

namespace gpml {
namespace {

// E20 (GQL side): sessions, RETURN projection, binding tables.

class GqlSessionTest : public ::testing::Test {
 protected:
  GqlSessionTest() : session_(catalog_) {
    EXPECT_TRUE(catalog_.AddGraph("bank", BuildPaperGraph()).ok());
    EXPECT_TRUE(session_.UseGraph("bank").ok());
  }
  Catalog catalog_;
  Session session_;
};

TEST_F(GqlSessionTest, RequiresGraphSelection) {
  Session fresh(catalog_);
  EXPECT_EQ(fresh.Execute("MATCH (x) RETURN x").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GqlSessionTest, UnknownGraph) {
  Session fresh(catalog_);
  EXPECT_EQ(fresh.UseGraph("nope").code(), StatusCode::kNotFound);
}

TEST_F(GqlSessionTest, ReturnProjection) {
  Result<Table> t = session_.Execute(
      "MATCH (x:Account WHERE x.isBlocked='yes') RETURN x.owner AS owner");
  ASSERT_TRUE(t.ok()) << t.status();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(*t->At(0, "owner"), Value::String("Jay"));
}

TEST_F(GqlSessionTest, DefaultProjectionListsAllNamedVariables) {
  Result<Table> t =
      session_.Execute("MATCH (a WHERE a.owner='Jay')-[e:Transfer]->(b)");
  ASSERT_TRUE(t.ok()) << t.status();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(*t->At(0, "a"), Value::String("a4"));
  EXPECT_EQ(*t->At(0, "e"), Value::String("t4"));
  EXPECT_EQ(*t->At(0, "b"), Value::String("a6"));
}

TEST_F(GqlSessionTest, ReturnDistinct) {
  Result<Table> all = session_.Execute(
      "MATCH (a:Account)-[:isLocatedIn]->(c) RETURN c.name AS n");
  Result<Table> distinct = session_.Execute(
      "MATCH (a:Account)-[:isLocatedIn]->(c) RETURN DISTINCT c.name AS n");
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(all->num_rows(), 6u);
  EXPECT_EQ(distinct->num_rows(), 2u);
}

TEST_F(GqlSessionTest, ReturnPathVariable) {
  Result<Table> t = session_.Execute(
      "MATCH ANY SHORTEST p = (a WHERE a.owner='Dave')-[:Transfer]->*"
      "(b WHERE b.owner='Aretha') RETURN p, PATH_LENGTH(p) AS len");
  ASSERT_TRUE(t.ok()) << t.status();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(*t->At(0, "p"), Value::String("path(a6,t5,a3,t2,a2)"));
  EXPECT_EQ(*t->At(0, "len"), Value::Int(2));
}

TEST_F(GqlSessionTest, GroupVariableProjection) {
  // Default projection renders group variables as comma-joined lists.
  Result<Table> t = session_.Execute(
      "MATCH (a WHERE a.owner='Jay')[-[b:Transfer]->]{2}(c)");
  ASSERT_TRUE(t.ok()) << t.status();
  ASSERT_EQ(t->num_rows(), 2u);
  Table table = *t;
  table.SortRows();
  EXPECT_EQ(*table.At(0, "b"), Value::String("t4,t5"));
  EXPECT_EQ(*table.At(1, "b"), Value::String("t4,t6"));
}

TEST_F(GqlSessionTest, AggregateInReturn) {
  Result<Table> t = session_.Execute(
      "MATCH (a WHERE a.owner='Jay')[-[b:Transfer]->]{4}(a) "
      "RETURN SUM(b.amount) AS total, COUNT(b) AS hops");
  ASSERT_TRUE(t.ok()) << t.status();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(*t->At(0, "total"), Value::Int(40'000'000));
  EXPECT_EQ(*t->At(0, "hops"), Value::Int(4));
}

TEST_F(GqlSessionTest, ErrorsSurfaceThroughExecute) {
  EXPECT_EQ(session_.Execute("MATCH (x").status().code(),
            StatusCode::kSyntaxError);
  EXPECT_EQ(session_.Execute("MATCH (a)->*(b) RETURN a").status().code(),
            StatusCode::kNonTerminating);
}

TEST_F(GqlSessionTest, MatchExposesRawOutput) {
  Result<MatchOutput> out = session_.Match("MATCH (x:Phone)");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows.size(), 4u);
}

TEST_F(GqlSessionTest, ExplainAnalyzeExecutesAndReportsActuals) {
  Result<Table> t = session_.Execute(
      "EXPLAIN ANALYZE MATCH (x:Account)-[t:Transfer]->(y) RETURN x");
  ASSERT_TRUE(t.ok()) << t.status();
  std::string text;
  for (const Row& row : t->rows()) text += row[0].ToString() + "\n";
  EXPECT_NE(text.find("actual_seeds="), std::string::npos) << text;
  EXPECT_NE(text.find("rows=8"), std::string::npos) << text;

  // Plain EXPLAIN does not execute and carries no actuals.
  Result<Table> plain = session_.Execute(
      "EXPLAIN MATCH (x:Account)-[t:Transfer]->(y) RETURN x");
  ASSERT_TRUE(plain.ok());
  std::string plain_text;
  for (const Row& row : plain->rows()) plain_text += row[0].ToString() + "\n";
  EXPECT_EQ(plain_text.find("actual_seeds="), std::string::npos);
}

TEST_F(GqlSessionTest, ExplainAnalyzeBindsParameters) {
  Result<Table> t = session_.Execute(
      "EXPLAIN ANALYZE MATCH (x:Account WHERE x.owner = $owner)"
      "-[t:Transfer]->(y) RETURN x",
      {{"owner", Value::String("Mike")}});
  ASSERT_TRUE(t.ok()) << t.status();
  std::string text;
  for (const Row& row : t->rows()) text += row[0].ToString() + "\n";
  EXPECT_NE(text.find("actual_seeds="), std::string::npos) << text;

  // RETURN-only parameter bindings are dropped (ANALYZE does not evaluate
  // RETURN), but a name the statement never references stays an error.
  Result<Table> extra = session_.Execute(
      "EXPLAIN ANALYZE MATCH (x:Account WHERE x.owner = $owner)"
      "-[t:Transfer]->(y) RETURN x, $tag",
      {{"owner", Value::String("Mike")}, {"tag", Value::Int(1)}});
  EXPECT_TRUE(extra.ok()) << extra.status();
  Result<Table> typo = session_.Execute(
      "EXPLAIN ANALYZE MATCH (x:Account WHERE x.owner = $owner)"
      "-[t:Transfer]->(y) RETURN x",
      {{"ownr", Value::String("Mike")}});
  ASSERT_FALSE(typo.ok());
  EXPECT_NE(typo.status().message().find("unknown parameter $ownr"),
            std::string::npos)
      << typo.status();
}

}  // namespace
}  // namespace gpml
