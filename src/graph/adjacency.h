#ifndef GPML_GRAPH_ADJACENCY_H_
#define GPML_GRAPH_ADJACENCY_H_

#include <cstdint>

namespace gpml {

/// Dense integer handle of a node within one PropertyGraph.
using NodeId = uint32_t;
/// Dense integer handle of an edge within one PropertyGraph.
using EdgeId = uint32_t;

inline constexpr uint32_t kInvalidId = 0xffffffffu;

/// How an edge is traversed within a path: a directed edge can be walked
/// along its direction (forward) or against it (backward); an undirected
/// edge has no orientation. Edge patterns of Figure 5 constrain which
/// traversals are admissible.
enum class Traversal : uint8_t { kForward, kBackward, kUndirected };

/// An incident-edge record in a node's adjacency list (and in the
/// label-partitioned buckets of CsrIndex, which store the same records
/// grouped by edge-label symbol).
struct Adjacency {
  EdgeId edge;
  NodeId neighbor;       // The endpoint reached by this traversal.
  Traversal traversal;   // How `edge` is crossed when leaving this node.
};

}  // namespace gpml

#endif  // GPML_GRAPH_ADJACENCY_H_
