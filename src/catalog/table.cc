#include "catalog/table.h"

#include <algorithm>
#include <sstream>

namespace gpml {

Status Table::Append(Row row) {
  GPML_RETURN_IF_ERROR(schema_.ValidateRow(row));
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<Value> Table::At(size_t row_index, const std::string& column) const {
  int col = schema_.FindColumn(column);
  if (col < 0) return Status::NotFound("no column named " + column);
  if (row_index >= rows_.size()) {
    return Status::InvalidArgument("row index out of range");
  }
  return rows_[row_index][static_cast<size_t>(col)];
}

void Table::SortRows() {
  std::sort(rows_.begin(), rows_.end());
}

void Table::DeduplicateRows() {
  SortRows();
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

std::string Table::ToString() const {
  // Compute column widths over header + data.
  std::vector<size_t> widths(schema_.num_columns());
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    widths[c] = schema_.column(c).name.size();
  }
  for (const Row& r : rows_) {
    std::vector<std::string> rendered;
    rendered.reserve(r.size());
    for (size_t c = 0; c < r.size(); ++c) {
      rendered.push_back(r[c].ToString());
      widths[c] = std::max(widths[c], rendered.back().size());
    }
    cells.push_back(std::move(rendered));
  }

  std::ostringstream os;
  auto pad = [&](const std::string& s, size_t w) {
    os << s << std::string(w - s.size(), ' ');
  };
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (c > 0) os << " | ";
    pad(schema_.column(c).name, widths[c]);
  }
  os << "\n";
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (c > 0) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << "\n";
  for (const auto& r : cells) {
    for (size_t c = 0; c < r.size(); ++c) {
      if (c > 0) os << " | ";
      pad(r[c], widths[c]);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace gpml
