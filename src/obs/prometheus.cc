#include "obs/prometheus.h"

#include <cinttypes>
#include <cstdio>

namespace gpml {
namespace obs {

namespace {

/// Appends `name value\n`, splicing `extra_label` (e.g. le="4") into the
/// name's label block (creating one when absent).
void AppendSeries(std::string* out, const std::string& base,
                  const std::string& labels, const std::string& extra_label,
                  uint64_t value) {
  *out += base;
  if (!labels.empty() || !extra_label.empty()) {
    out->push_back('{');
    *out += labels;
    if (!labels.empty() && !extra_label.empty()) out->push_back(',');
    *out += extra_label;
    out->push_back('}');
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
  *out += buf;
}

/// Signed variant for gauges (which may legitimately read negative during
/// racing increment/decrement interleavings).
void AppendSeriesInt(std::string* out, const std::string& base,
                     const std::string& labels, int64_t value) {
  *out += base;
  if (!labels.empty()) {
    out->push_back('{');
    *out += labels;
    out->push_back('}');
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", value);
  *out += buf;
}

/// Emits `# TYPE base <type>` once per base name (bases arrive grouped
/// because snapshots are name-sorted and labeled series share a prefix).
void MaybeTypeLine(std::string* out, std::string* last_base,
                   const std::string& base, const char* type) {
  if (base == *last_base) return;
  *out += "# TYPE " + base + " " + type + "\n";
  *last_base = base;
}

}  // namespace

void SplitMetricName(const std::string& name, std::string* base,
                     std::string* labels) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  size_t close = name.rfind('}');
  if (close == std::string::npos || close <= brace) {
    labels->clear();
    return;
  }
  *labels = name.substr(brace + 1, close - brace - 1);
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_base;
  for (const CounterSnapshot& c : snapshot.counters) {
    std::string base, labels;
    SplitMetricName(c.name, &base, &labels);
    MaybeTypeLine(&out, &last_base, base, "counter");
    AppendSeries(&out, base, labels, "", c.value);
  }
  last_base.clear();
  for (const GaugeSnapshot& g : snapshot.gauges) {
    std::string base, labels;
    SplitMetricName(g.name, &base, &labels);
    MaybeTypeLine(&out, &last_base, base, "gauge");
    AppendSeriesInt(&out, base, labels, g.value);
  }
  last_base.clear();
  for (const HistogramSnapshot& h : snapshot.histograms) {
    std::string base, labels;
    SplitMetricName(h.name, &base, &labels);
    MaybeTypeLine(&out, &last_base, base, "histogram");
    // Prometheus histogram buckets are cumulative and end at le="+Inf".
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      std::string le;
      if (i + 1 == h.buckets.size()) {
        le = "le=\"+Inf\"";
      } else {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "le=\"%" PRIu64 "\"",
                      Histogram::BoundMicros(i));
        le = buf;
      }
      AppendSeries(&out, base + "_bucket", labels, le, cumulative);
    }
    AppendSeries(&out, base + "_sum", labels, "", h.sum_us);
    AppendSeries(&out, base + "_count", labels, "", h.count);
  }
  return out;
}

std::string RenderPrometheus(const MetricsRegistry& registry) {
  return RenderPrometheus(registry.Snapshot());
}

}  // namespace obs
}  // namespace gpml
