#ifndef GPML_PLANNER_EXPLAIN_H_
#define GPML_PLANNER_EXPLAIN_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "catalog/table.h"
#include "common/result.h"
#include "planner/planner.h"

namespace gpml {
namespace planner {

/// Execution-level facts rendered into EXPLAIN alongside the plan: the
/// resolved worker count and whether the plan was served from the graph's
/// plan cache. EXPLAIN ANALYZE executions additionally report the result
/// row count and whether the output was truncated by an evaluation budget.
struct ExplainExec {
  size_t threads = 1;
  bool cached = false;
  /// Vectorized matcher block target (EngineOptions::use_batch on): rendered
  /// as `batch=N` on the exec line; 0 = scalar execution.
  size_t batch = 0;
  bool analyzed = false;  // True for EXPLAIN ANALYZE: rows/truncated valid.
  size_t rows = 0;        // Result rows after join, mode filter, postfilter.
  bool truncated = false; // Budget-truncated output (not a clean LIMIT stop).
  // Wall-clock actuals (EXPLAIN ANALYZE; monotonic clock): rendered as
  // `ms=`/`plan_ms=` on the exec line when >= 0 and parsed back by
  // ParseExplain. plan_ms is the compile cost this execution paid — 0.000
  // on a plan-cache hit.
  double total_ms = -1;
  double plan_ms = -1;
};

/// Per-declaration run-time actuals of one EXPLAIN ANALYZE execution, in
/// plan (step) order — the measured counterparts of the step estimates.
struct DeclActual {
  size_t seeds = 0;            // Start nodes actually seeded.
  size_t steps = 0;            // Matcher instructions executed.
  size_t bindings = 0;         // Match-set size before the join.
  bool index_seeded = false;   // Seeded from the equality hash index.
  bool seed_filtered = false;  // Seeded from earlier declarations' bindings.
  double ms = -1;              // Declaration wall clock (seed + match);
                               // rendered as actual_ms= when >= 0.
};

/// Renders a plan as stable, line-oriented text, one `step` line per
/// declaration in execution order:
///
///   plan: 2 declaration(s), planner=on
///   exec: threads=4 cached=true
///   step 1: decl=0 dir=forward anchor=left var=x seeds~2 source=label:Account
///       fanout~1.5 join=[] selector=none
///   step 2: decl=1 dir=reversed anchor=right var=y seeds~3 source=bound:y
///       fanout~2 join=[x,y] selector=ALL SHORTEST
///
/// (each step is a single line; wrapped here for readability). The `exec:`
/// line appears when `exec` is non-null. When `stats` is non-null a
/// `-- graph stats --` section is appended. The format is parsed back by
/// ParseExplain, which keeps renderer and parser honest. Free-form values
/// (variable names, labels, selectors) are escaped with EscapeExplainValue
/// so quotes, spaces, and newlines cannot break the line framing.
/// `actuals`, when non-null (EXPLAIN ANALYZE), appends measured
/// `actual_seeds/actual_steps/actual_rows/actual_ms/actual_source` tokens
/// to each step line, where actual_source is `index`, `bound` or `scan`.
/// `warnings`, when non-null and non-empty, renders the static analyzer's
/// findings (docs/analysis.md) between the exec line and the steps:
///
///   warnings: 2
///   warning 1: code=GPML-W101 severity=warning begin=24 end=41
///       hint=<escaped> message=<escaped, extends to end of line>
///
/// (each warning is a single line). Message and hint text are escaped with
/// EscapeExplainValue — message with keep_spaces, as the final token — so
/// ParseExplain recovers them byte-exactly.
std::string ExplainPlan(const Plan& plan, const VarTable& vars,
                        const GraphStats* stats = nullptr,
                        const ExplainExec* exec = nullptr,
                        const std::vector<DeclActual>* actuals = nullptr,
                        const analysis::DiagnosticList* warnings = nullptr);

/// Escapes a free-form value for embedding as a space-delimited `key=value`
/// token of an EXPLAIN line: backslash, newline, carriage return, space and
/// comma become \\ \n \r \s \c. With `keep_spaces` (the final token of a
/// line, which extends to end of line) spaces stay literal. Unescape inverts
/// exactly; unknown escapes and a trailing backslash are kept literally.
std::string EscapeExplainValue(const std::string& value,
                               bool keep_spaces = false);
std::string UnescapeExplainValue(const std::string& value);

/// A step line of an EXPLAIN rendering, decoded.
struct ExplainedDecl {
  int step = -1;        // 1-based execution position.
  int decl_index = -1;  // Source declaration index.
  bool reversed = false;
  std::string anchor;   // "left" or "right".
  std::string var;      // Anchor variable name; "_" when none.
  double seeds = 0;     // Estimated enumerated seeds; -1 ("*") for bound
                        // steps, whose seed count is a run-time join size.
  double selectivity = -1;  // `sel~` estimate; -1 when the line carried none.
  std::string source;   // "all", "label:<L>", or "bound:<var>".
  std::vector<std::string> join_vars;
  std::string selector;
  // EXPLAIN ANALYZE actuals; -1 when the line carried none.
  long actual_seeds = -1;
  long actual_steps = -1;
  long actual_rows = -1;
  double actual_ms = -1;      // Wall-clock ms of this declaration.
  std::string actual_source;  // "index", "bound", "scan"; "" when absent.
};

/// A warning line of an EXPLAIN rendering, decoded. Mirrors
/// analysis::Diagnostic with the severity as its rendered name.
struct ExplainedWarning {
  std::string code;      // e.g. "GPML-W101".
  std::string severity;  // "error" / "warning" / "note".
  size_t begin = 0;      // Source byte range; begin==end when unknown.
  size_t end = 0;
  std::string message;   // Unescaped.
  std::string hint;      // Unescaped; empty when the line carried none.
};

struct ExplainedPlan {
  bool planner_on = false;
  bool has_exec = false;   // An `exec:` line was present.
  size_t threads = 0;      // From the exec line; 0 when absent.
  bool cached = false;     // From the exec line; false when absent.
  size_t batch = 0;        // `batch=` on the exec line; 0 when absent.
  bool analyzed = false;   // The exec line carried ANALYZE actuals.
  size_t rows = 0;         // From the exec line; 0 when absent.
  bool truncated = false;  // From the exec line; false when absent.
  double total_ms = -1;    // `ms=` on the exec line; -1 when absent.
  double plan_ms = -1;     // `plan_ms=` on the exec line; -1 when absent.
  std::vector<ExplainedDecl> decls;
  std::vector<ExplainedWarning> warnings;  // From the `warnings:` section.
};

/// Parses ExplainPlan output back into its decisions (roundtrip tests,
/// tooling). Ignores the optional stats section.
Result<ExplainedPlan> ParseExplain(const std::string& text);

/// Renders a plan text as a one-column table ("plan", one row per line) —
/// the shape both hosts return for EXPLAIN statements.
Table ExplainTable(const std::string& text);

/// If `statement` starts with the EXPLAIN keyword (case-insensitive, after
/// whitespace), strips it into `*rest` and returns true.
bool StripExplainPrefix(const std::string& statement, std::string* rest);

/// If `statement` starts with the ANALYZE keyword (case-insensitive, after
/// whitespace), strips it into `*rest` and returns true. Both hosts apply
/// this after StripExplainPrefix to recognize EXPLAIN ANALYZE.
bool StripAnalyzePrefix(const std::string& statement, std::string* rest);

}  // namespace planner
}  // namespace gpml

#endif  // GPML_PLANNER_EXPLAIN_H_
