#include "analysis/type_check.h"

#include "common/value.h"

namespace gpml {
namespace analysis {
namespace {

TypeSet BitForValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return kTNull;
    case ValueType::kBool: return kTBool;
    case ValueType::kInt: return kTInt;
    case ValueType::kDouble: return kTDouble;
    case ValueType::kString: return kTString;
  }
  return kTAnyValue;
}

// Comparability classes: two operands can compare non-UNKNOWN only when
// they can share a class (expr_eval.cc CompareValues returns Unknown for
// cross-class comparisons instead of erroring).
constexpr unsigned kClassNumeric = 1u << 0;
constexpr unsigned kClassString = 1u << 1;
constexpr unsigned kClassBool = 1u << 2;
constexpr unsigned kClassElement = 1u << 3;

unsigned ClassesOf(TypeSet t) {
  unsigned c = 0;
  if ((t & kTNumeric) != 0) c |= kClassNumeric;
  if ((t & kTString) != 0) c |= kClassString;
  if ((t & kTBool) != 0) c |= kClassBool;
  if ((t & kTElement) != 0) c |= kClassElement;
  return c;
}

bool IsOrdered(BinaryOp op) {
  return op == BinaryOp::kLt || op == BinaryOp::kLe || op == BinaryOp::kGt ||
         op == BinaryOp::kGe;
}

bool IsComparison(BinaryOp op) {
  return op == BinaryOp::kEq || op == BinaryOp::kNeq || IsOrdered(op);
}

bool IsArithmetic(BinaryOp op) {
  return op == BinaryOp::kAdd || op == BinaryOp::kSub ||
         op == BinaryOp::kMul || op == BinaryOp::kDiv;
}

bool IsConnective(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

SourceSpan SpanOrParent(const Expr& child, const Expr& parent) {
  return child.span.valid() ? child.span : parent.span;
}

ParamConstraint* TouchParam(const Expr& e, ParamConstraintMap* params) {
  if (e.kind != Expr::Kind::kParam || params == nullptr) return nullptr;
  ParamConstraint& pc = (*params)[e.var];
  if (!pc.span.valid()) pc.span = e.span;
  return &pc;
}

// For ordered comparisons against a parameter, a *literal* other side pins
// the parameter's comparability class (a non-matching binding would make
// the predicate permanently UNKNOWN). Property accesses don't pin anything
// — their runtime type is unknown.
void TightenParamAgainst(const Expr& param_side, const Expr& other,
                         ParamConstraintMap* params) {
  ParamConstraint* pc = TouchParam(param_side, params);
  if (pc == nullptr || other.kind != Expr::Kind::kLiteral) return;
  TypeSet t = BitForValue(other.literal);
  if ((t & kTNumeric) != 0) pc->needs_numeric = true;
  if ((t & kTString) != 0) pc->needs_string = true;
}

// A predicate position accepts any set containing kTBool, and pure value
// sets containing kTNull (always-UNKNOWN predicates match nothing but are
// not type errors — satisfiability warns about them). An element-typed set
// without a boolean alternative errors at evaluation time whenever the
// variable is bound, so it is a hard error statically even though
// conditional variables add kTNull to it.
bool PredicateTypeError(TypeSet t) {
  if ((t & (kTBool | kTNull)) == 0) return true;
  return (t & kTBool) == 0 && (t & kTElement) != 0;
}

}  // namespace

TypeSet InferTypes(const Expr& e, bool predicate_pos, DiagnosticList* diags,
                   ParamConstraintMap* params) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return BitForValue(e.literal);

    case Expr::Kind::kParam: {
      ParamConstraint* pc = TouchParam(e, params);
      if (predicate_pos && pc != nullptr) pc->needs_bool = true;
      return kTAnyValue;
    }

    case Expr::Kind::kVarRef:
      // Element reference; conditional (optional-scoped) variables may be
      // unbound and evaluate to NULL. Path variables also land here — the
      // analyzer treats paths as elements for comparability purposes.
      return kTElement | kTNull;

    case Expr::Kind::kPropertyAccess:
      // Property values are dynamically typed; a missing key yields NULL.
      return kTAnyValue;

    case Expr::Kind::kBinary: {
      if (IsConnective(e.op)) {
        for (const ExprPtr& side : {e.lhs, e.rhs}) {
          if (side == nullptr) continue;
          TypeSet t = InferTypes(*side, /*predicate_pos=*/true, diags, params);
          if (PredicateTypeError(t)) {
            diags->Add(kCodePredicateType, Severity::kError,
                       SpanOrParent(*side, e),
                       std::string(BinaryOpName(e.op)) +
                           " operand can never be boolean",
                       "operands of AND/OR must be predicates");
          }
        }
        return kTBool | kTNull;
      }
      if (IsComparison(e.op)) {
        TypeSet lt = e.lhs ? InferTypes(*e.lhs, false, diags, params) : 0;
        TypeSet rt = e.rhs ? InferTypes(*e.rhs, false, diags, params) : 0;
        if (e.lhs != nullptr && e.rhs != nullptr) {
          unsigned common = ClassesOf(lt) & ClassesOf(rt);
          if (ClassesOf(lt) != 0 && ClassesOf(rt) != 0 && common == 0) {
            // Runtime CompareValues yields UNKNOWN for every row.
            diags->Add(kCodeIncomparable, Severity::kWarning, e.span,
                       "comparison between incompatible types is always "
                       "UNKNOWN",
                       "rows never match an UNKNOWN predicate");
          }
          if (IsOrdered(e.op)) {
            TightenParamAgainst(*e.lhs, *e.rhs, params);
            TightenParamAgainst(*e.rhs, *e.lhs, params);
          } else {
            TouchParam(*e.lhs, params);
            TouchParam(*e.rhs, params);
          }
        }
        return kTBool | kTNull;
      }
      if (IsArithmetic(e.op)) {
        for (const ExprPtr& side : {e.lhs, e.rhs}) {
          if (side == nullptr) continue;
          TypeSet t = InferTypes(*side, false, diags, params);
          if ((t & (kTNumeric | kTNull)) == 0) {
            diags->Add(kCodeArithmeticType, Severity::kError,
                       SpanOrParent(*side, e),
                       std::string("operand of ") + BinaryOpName(e.op) +
                           " can never be numeric",
                       "arithmetic requires INT or DOUBLE operands");
          }
          if (ParamConstraint* pc = TouchParam(*side, params)) {
            pc->needs_numeric = true;
          }
        }
        return kTNumeric | kTNull;
      }
      return kTAnyValue;
    }

    case Expr::Kind::kNot: {
      if (e.lhs != nullptr) {
        TypeSet t = InferTypes(*e.lhs, /*predicate_pos=*/true, diags, params);
        if (PredicateTypeError(t)) {
          diags->Add(kCodePredicateType, Severity::kError,
                     SpanOrParent(*e.lhs, e),
                     "NOT operand can never be boolean",
                     "NOT applies to predicates");
        }
      }
      return kTBool | kTNull;
    }

    case Expr::Kind::kIsNull:
      if (e.lhs != nullptr) InferTypes(*e.lhs, false, diags, params);
      return kTBool;  // IS [NOT] NULL never yields NULL.

    case Expr::Kind::kAggregate: {
      if (e.arg != nullptr) InferTypes(*e.arg, false, diags, params);
      switch (e.agg) {
        case AggFunc::kCount: return kTInt;
        case AggFunc::kSum:
        case AggFunc::kAvg: return kTNumeric | kTNull;
        case AggFunc::kMin:
        case AggFunc::kMax: return kTAnyValue;
        case AggFunc::kListAgg: return kTString | kTNull;
      }
      return kTAnyValue;
    }

    case Expr::Kind::kIsDirected:
    case Expr::Kind::kIsSourceOf:
    case Expr::Kind::kIsDestinationOf:
    case Expr::Kind::kSame:
    case Expr::Kind::kAllDifferent:
      return kTBool | kTNull;  // NULL when a conditional var is unbound.

    case Expr::Kind::kPathLength:
      return kTInt | kTNull;
  }
  return kTAnyValue;
}

void CheckPredicateTypes(const Expr& e, DiagnosticList* diags,
                         ParamConstraintMap* params) {
  TypeSet t = InferTypes(e, /*predicate_pos=*/true, diags, params);
  if (PredicateTypeError(t)) {
    const char* detail = (t & kTElement) != 0
                             ? "element used as a predicate"
                             : "predicate can never be boolean";
    diags->Add(kCodePredicateType, Severity::kError, e.span, detail,
               "WHERE requires a boolean expression");
  }
}

void CheckParamContradictions(const ParamConstraintMap& params,
                              DiagnosticList* diags) {
  for (const auto& [name, pc] : params) {
    int kinds = (pc.needs_bool ? 1 : 0) + (pc.needs_numeric ? 1 : 0) +
                (pc.needs_string ? 1 : 0);
    if (kinds <= 1) continue;
    // Warning, not error: NULL satisfies every constraint simultaneously
    // (the predicate is then UNKNOWN, matching no rows).
    diags->Add(kCodeParamContradiction, Severity::kWarning, pc.span,
               "parameter $" + name +
                   " is used with contradictory type constraints",
               "only a NULL binding satisfies all use sites");
  }
}

}  // namespace analysis
}  // namespace gpml
