// E18 (§6): the execution pipeline, stage by stage, on the running example
// — parse, normalize+analyze, compile, match — plus the §6-literal
// reference evaluator against the lazy production engine (the ablation for
// DESIGN.md decision 1: expansion vs product-graph search).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "eval/nfa.h"
#include "eval/reference_eval.h"
#include "parser/parser.h"
#include "semantics/normalize.h"
#include "semantics/termination.h"

namespace gpml {
namespace {

constexpr const char* kRunningQuery =
    "MATCH TRAIL (a WHERE a.owner='Jay')"
    "[-[b:Transfer WHERE b.amount>5M]->]+"
    "(a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]";

void BM_Sec6_Parse(benchmark::State& state) {
  for (auto _ : state) {
    Result<GraphPattern> g = ParseGraphPattern(kRunningQuery);
    if (!g.ok()) std::abort();
    benchmark::DoNotOptimize(g->paths.size());
  }
}
BENCHMARK(BM_Sec6_Parse);

void BM_Sec6_NormalizeAnalyze(benchmark::State& state) {
  GraphPattern parsed = *ParseGraphPattern(kRunningQuery);
  for (auto _ : state) {
    Result<GraphPattern> n = Normalize(parsed);
    if (!n.ok()) std::abort();
    Result<Analysis> a = Analyze(*n);
    if (!a.ok()) std::abort();
    benchmark::DoNotOptimize(a->variables().size());
  }
}
BENCHMARK(BM_Sec6_NormalizeAnalyze);

void BM_Sec6_Compile(benchmark::State& state) {
  GraphPattern parsed = *ParseGraphPattern(kRunningQuery);
  GraphPattern normalized = *Normalize(parsed);
  Analysis analysis = *Analyze(normalized);
  VarTable vars(analysis);
  for (auto _ : state) {
    Result<Program> p = CompilePattern(normalized.paths[0], vars);
    if (!p.ok()) std::abort();
    benchmark::DoNotOptimize(p->code.size());
  }
}
BENCHMARK(BM_Sec6_Compile);

void BM_Sec6_ProductionEngine(benchmark::State& state) {
  static PropertyGraph* g = new PropertyGraph(BuildPaperGraph());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::RunOrDie(*g, kRunningQuery));
  }
}
BENCHMARK(BM_Sec6_ProductionEngine);

void BM_Sec6_ReferenceEvaluator(benchmark::State& state) {
  // The literal §6 pipeline: expansion cap = |E|+1 under TRAIL.
  static PropertyGraph* g = new PropertyGraph(BuildPaperGraph());
  GraphPattern parsed = *ParseGraphPattern(kRunningQuery);
  GraphPattern normalized = *Normalize(parsed);
  Analysis analysis = *Analyze(normalized);
  VarTable vars(analysis);
  for (auto _ : state) {
    Result<MatchSet> m =
        RunReference(*g, normalized.paths[0], vars, ReferenceOptions{});
    if (!m.ok()) std::abort();
    benchmark::DoNotOptimize(m->bindings.size());
  }
}
BENCHMARK(BM_Sec6_ReferenceEvaluator)->Unit(benchmark::kMillisecond);

void BM_Sec6_ReferenceExpansionOnly(benchmark::State& state) {
  static PropertyGraph* g = new PropertyGraph(BuildPaperGraph());
  GraphPattern parsed = *ParseGraphPattern(kRunningQuery);
  GraphPattern normalized = *Normalize(parsed);
  Analysis analysis = *Analyze(normalized);
  VarTable vars(analysis);
  for (auto _ : state) {
    Result<std::vector<RigidPattern>> rigids =
        ExpandPattern(normalized.paths[0], vars, *g, ReferenceOptions{});
    if (!rigids.ok()) std::abort();
    benchmark::DoNotOptimize(rigids->size());
  }
}
BENCHMARK(BM_Sec6_ReferenceExpansionOnly);

void BM_Sec6_FullPipelineEndToEnd(benchmark::State& state) {
  static PropertyGraph* g = new PropertyGraph(BuildPaperGraph());
  Engine engine(*g);
  for (auto _ : state) {
    Result<MatchOutput> out = engine.Match(kRunningQuery);
    if (!out.ok()) std::abort();
    benchmark::DoNotOptimize(out->rows.size());
  }
}
BENCHMARK(BM_Sec6_FullPipelineEndToEnd);

}  // namespace
}  // namespace gpml
