#ifndef GPML_SERVER_ADMISSION_H_
#define GPML_SERVER_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/result.h"
#include "eval/matcher.h"

namespace gpml {
namespace server {

/// Per-tenant resource quotas. The per-query caps are mapped onto the
/// engine's SharedBudget: every admitted execution runs with
/// MatcherOptions::max_steps / max_matches tightened to
/// min(server default, tenant cap, remaining cumulative step budget), so
/// one tenant's pathological query trips its own budget — a structured
/// RESOURCE_EXHAUSTED — instead of starving the box (docs/server.md).
struct TenantQuota {
  /// Concurrent open sessions (connections). 0 = unlimited.
  size_t max_sessions = 0;
  /// Queries in flight at once (execute/open/fetch count while running).
  /// 0 = unlimited.
  size_t max_concurrent = 0;
  /// Per-query matcher step cap; feeds the query's SharedBudget. 0 keeps
  /// the server's engine default.
  size_t max_steps_per_query = 0;
  /// Per-query accepted-match cap; feeds the query's SharedBudget. 0
  /// keeps the server's engine default.
  size_t max_matches_per_query = 0;
  /// Cumulative matcher steps across the tenant's lifetime; once spent,
  /// further queries are rejected with TENANT_STEP_BUDGET. 0 = unlimited.
  uint64_t max_total_steps = 0;
};

/// Admission decisions for sessions and queries, per tenant. All methods
/// are thread-safe; the per-query fast path is one short critical section.
class AdmissionController {
 public:
  explicit AdmissionController(TenantQuota default_quota = {})
      : default_quota_(default_quota) {}

  /// Installs a tenant-specific quota (before or after traffic starts).
  void SetQuota(const std::string& tenant, TenantQuota quota);
  TenantQuota QuotaFor(const std::string& tenant) const;

  /// Claims a session slot. kResourceExhausted (reason TENANT_SESSIONS)
  /// when the tenant is at max_sessions.
  Status AdmitSession(const std::string& tenant);
  void ReleaseSession(const std::string& tenant);

  /// Claims an in-flight query slot. kResourceExhausted with reason
  /// TENANT_CONCURRENCY (at max_concurrent) or TENANT_STEP_BUDGET
  /// (cumulative steps spent). On success the caller MUST balance with
  /// ReleaseQuery; use QueryTicket for that.
  Status AdmitQuery(const std::string& tenant);
  void ReleaseQuery(const std::string& tenant);

  /// Records `steps` executed by a completed query against the tenant's
  /// cumulative budget.
  void ChargeSteps(const std::string& tenant, uint64_t steps);

  /// Remaining cumulative step budget; SIZE_MAX when unlimited.
  uint64_t RemainingSteps(const std::string& tenant) const;

  /// Tightens `matcher` to the tenant's per-query caps and remaining
  /// cumulative budget — the quota -> SharedBudget mapping (the engine
  /// builds each execution's SharedBudget from these two fields).
  MatcherOptions ApplyQuota(const std::string& tenant,
                            MatcherOptions matcher) const;

  /// Live counters for a stats endpoint / tests.
  struct TenantCounts {
    size_t sessions = 0;
    size_t in_flight = 0;
    uint64_t total_steps = 0;
  };
  TenantCounts CountsFor(const std::string& tenant) const;

 private:
  struct TenantState {
    TenantQuota quota;
    bool quota_set = false;  // False: track counts under the default quota.
    size_t sessions = 0;
    size_t in_flight = 0;
    uint64_t total_steps = 0;
  };

  const TenantState* FindLocked(const std::string& tenant) const;
  TenantState& GetLocked(const std::string& tenant);
  const TenantQuota& EffectiveQuotaLocked(const TenantState& state) const;

  mutable std::mutex mu_;
  TenantQuota default_quota_;
  std::map<std::string, TenantState> tenants_;
};

/// RAII in-flight query slot: releases on destruction. Move-only.
class QueryTicket {
 public:
  QueryTicket() = default;
  QueryTicket(AdmissionController* controller, std::string tenant)
      : controller_(controller), tenant_(std::move(tenant)) {}
  QueryTicket(QueryTicket&& other) noexcept { *this = std::move(other); }
  QueryTicket& operator=(QueryTicket&& other) noexcept {
    Release();
    controller_ = other.controller_;
    tenant_ = std::move(other.tenant_);
    other.controller_ = nullptr;
    return *this;
  }
  QueryTicket(const QueryTicket&) = delete;
  QueryTicket& operator=(const QueryTicket&) = delete;
  ~QueryTicket() { Release(); }

  void Release() {
    if (controller_ != nullptr) controller_->ReleaseQuery(tenant_);
    controller_ = nullptr;
  }

 private:
  AdmissionController* controller_ = nullptr;
  std::string tenant_;
};

}  // namespace server
}  // namespace gpml

#endif  // GPML_SERVER_ADMISSION_H_
