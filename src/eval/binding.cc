#include "eval/binding.h"

#include <algorithm>

namespace gpml {

VarTable::VarTable(const Analysis& analysis) {
  for (const auto& [name, info] : analysis.variables()) {
    by_name_[name] = static_cast<int>(infos_.size());
    infos_.push_back(info);
  }
  // Reduced anonymous variables (§6.5): one node, one edge.
  {
    VarInfo anon_node;
    anon_node.name = "_";
    anon_node.kind = VarInfo::Kind::kNode;
    anon_node.anonymous = true;
    anon_node_id_ = static_cast<int>(infos_.size());
    infos_.push_back(std::move(anon_node));

    VarInfo anon_edge;
    anon_edge.name = "-";
    anon_edge.kind = VarInfo::Kind::kEdge;
    anon_edge.anonymous = true;
    anon_edge_id_ = static_cast<int>(infos_.size());
    infos_.push_back(std::move(anon_edge));
  }
}

int VarTable::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

BindingChain Extend(const BindingChain& chain, ElementaryBinding b,
                    Traversal t) {
  auto link = std::make_shared<BindingLink>();
  link->binding = b;
  link->traversal = t;
  link->prev = chain;
  link->size = (chain == nullptr ? 0 : chain->size) + 1;
  return link;
}

std::vector<BindingLink> Materialize(const BindingChain& chain) {
  std::vector<BindingLink> out;
  if (chain == nullptr) return out;
  out.resize(chain->size);
  const BindingLink* cur = chain.get();
  for (size_t i = chain->size; i-- > 0;) {
    out[i] = *cur;
    cur = cur->prev.get();
  }
  return out;
}

EnvChain ExtendEnv(const EnvChain& env, int var, ElementRef element,
                   uint64_t serial) {
  auto link = std::make_shared<EnvLink>();
  link->var = var;
  link->element = element;
  link->serial = serial;
  link->prev = env;
  return link;
}

const EnvLink* LookupEnv(const EnvChain& env, int var) {
  for (const EnvLink* cur = env.get(); cur != nullptr;
       cur = cur->prev.get()) {
    if (cur->var == var) return cur;
  }
  return nullptr;
}

std::vector<ElementRef> PathBinding::ElementsOf(int var) const {
  std::vector<ElementRef> out;
  for (const ElementaryBinding& b : reduced) {
    if (b.var == var) out.push_back(b.element);
  }
  return out;
}

const ElementRef* PathBinding::LastOf(int var) const {
  for (size_t i = reduced.size(); i-- > 0;) {
    if (reduced[i].var == var) return &reduced[i].element;
  }
  return nullptr;
}

size_t PathBinding::ReducedHash() const {
  size_t h = 0xcbf29ce484222325ULL;
  for (const ElementaryBinding& b : reduced) {
    h = HashCombine(h, static_cast<size_t>(b.var));
    h = HashCombine(h, ElementRefHash()(b.element));
  }
  for (int32_t t : tags) h = HashCombine(h, 0x1000 + static_cast<size_t>(t));
  return h;
}

std::string PathBinding::ToString(const PropertyGraph& g,
                                  const VarTable& vars) const {
  std::vector<std::string> parts;
  parts.reserve(reduced.size());
  for (const ElementaryBinding& b : reduced) {
    parts.push_back(vars.name(b.var) + "=" + g.element(b.element).name);
  }
  return Join(parts, " ");
}

PathBinding ReduceChain(const BindingChain& chain, const VarTable& vars,
                        std::vector<int32_t> tags) {
  PathBinding out;
  out.tags = std::move(tags);
  std::vector<BindingLink> raw = Materialize(chain);

  // Reconstruct the path: first node entry starts it; every edge entry is
  // followed by (a run of) node entries for the node it reaches.
  bool started = false;
  for (size_t i = 0; i < raw.size(); ++i) {
    const BindingLink& l = raw[i];
    if (l.binding.element.is_node()) {
      if (!started) {
        out.path = Path(l.binding.element.id);
        started = true;
      }
    } else {
      // Edge entry: the next node entry provides the endpoint reached.
      NodeId next = kInvalidId;
      for (size_t j = i + 1; j < raw.size(); ++j) {
        if (raw[j].binding.element.is_node()) {
          next = raw[j].binding.element.id;
          break;
        }
      }
      out.path.Append(l.binding.element.id, l.traversal, next);
    }
  }

  // Reduction with adjacency cleanup (§6.3, §6.5): within each run of
  // consecutive node entries keep the named bindings; if the run is all
  // anonymous keep a single reduced anonymous binding. Edge entries are
  // kept, anonymous ones renamed to the shared anonymous edge variable.
  size_t i = 0;
  while (i < raw.size()) {
    const BindingLink& l = raw[i];
    if (l.binding.element.is_edge()) {
      out.reduced.push_back(
          {vars.Reduced(l.binding.var), l.binding.element});
      ++i;
      continue;
    }
    size_t run_end = i;
    while (run_end < raw.size() &&
           raw[run_end].binding.element.is_node()) {
      ++run_end;
    }
    bool any_named = false;
    for (size_t j = i; j < run_end; ++j) {
      if (!vars.info(raw[j].binding.var).anonymous) {
        any_named = true;
        out.reduced.push_back(raw[j].binding);
      }
    }
    if (!any_named) {
      out.reduced.push_back(
          {vars.anon_node_id(), raw[i].binding.element});
    }
    i = run_end;
  }
  return out;
}

}  // namespace gpml
