#ifndef GPML_ANALYSIS_TYPE_CHECK_H_
#define GPML_ANALYSIS_TYPE_CHECK_H_

#include <map>
#include <string>

#include "analysis/diagnostic.h"
#include "ast/expr.h"

namespace gpml {
namespace analysis {

/// A set of runtime types an expression may produce, as a bitmask. The
/// static lattice mirrors eval/expr_eval.cc: property accesses and
/// parameters are any value, variable references are elements (or NULL for
/// unbound conditionals), and every operator's result set follows its SQL
/// three-valued semantics.
using TypeSet = unsigned;

inline constexpr TypeSet kTNull = 1u << 0;
inline constexpr TypeSet kTBool = 1u << 1;
inline constexpr TypeSet kTInt = 1u << 2;
inline constexpr TypeSet kTDouble = 1u << 3;
inline constexpr TypeSet kTString = 1u << 4;
inline constexpr TypeSet kTElement = 1u << 5;
inline constexpr TypeSet kTNumeric = kTInt | kTDouble;
inline constexpr TypeSet kTAnyValue =
    kTNull | kTBool | kTNumeric | kTString;

/// Bind-time constraints inferred for one $parameter from its use sites.
/// Mirrors (and extends) eval/params.h ParamInfo: the analyzer additionally
/// flags parameters whose constraints are jointly unsatisfiable (GPML-W107).
struct ParamConstraint {
  bool needs_bool = false;     // Used as a predicate.
  bool needs_numeric = false;  // Arithmetic operand / ordered-compared with
                               // a numeric-only expression.
  bool needs_string = false;   // Ordered-compared with a string-only
                               // expression.
  SourceSpan span;             // First use site.
};

using ParamConstraintMap = std::map<std::string, ParamConstraint>;

/// Infers the result TypeSet of `e`, appending GPML-E011/E012/W106
/// diagnostics for operand mismatches and recording $param constraints.
/// `predicate_pos` marks positions whose value feeds a 3VL predicate
/// (AND/OR/NOT operands and WHERE roots).
TypeSet InferTypes(const Expr& e, bool predicate_pos, DiagnosticList* diags,
                   ParamConstraintMap* params);

/// Type-checks a WHERE-root expression: InferTypes plus the requirement
/// that the root can be boolean or NULL (GPML-E012 otherwise).
void CheckPredicateTypes(const Expr& e, DiagnosticList* diags,
                         ParamConstraintMap* params);

/// Emits GPML-W107 for every parameter whose accumulated constraints admit
/// no non-NULL binding (e.g. used both as a predicate and in arithmetic).
void CheckParamContradictions(const ParamConstraintMap& params,
                              DiagnosticList* diags);

}  // namespace analysis
}  // namespace gpml

#endif  // GPML_ANALYSIS_TYPE_CHECK_H_
