#ifndef GPML_BASELINE_REGEX_H_
#define GPML_BASELINE_REGEX_H_

#include <memory>
#include <string>

#include "common/result.h"

namespace gpml {
namespace baseline {

/// Regular path query expressions over edge labels — the classic CRPQ/2RPQ
/// language of §3/§8 (Cruz-Mendelzon-Wood lineage; SPARQL property paths).
/// Syntax mirrors SPARQL: `a` (forward step), `^a` (inverse step), `a/b`
/// (concatenation), `a|b` (union), postfix `*` `+` `?`, parentheses.
struct Regex {
  enum class Kind { kLabel, kInverse, kConcat, kUnion, kStar, kPlus, kOpt };

  Kind kind = Kind::kLabel;
  std::string label;                 // kLabel/kInverse.
  std::shared_ptr<const Regex> left;
  std::shared_ptr<const Regex> right;

  std::string ToString() const;
};

using RegexPtr = std::shared_ptr<const Regex>;

Result<RegexPtr> ParseRegex(const std::string& text);

}  // namespace baseline
}  // namespace gpml

#endif  // GPML_BASELINE_REGEX_H_
