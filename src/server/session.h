#ifndef GPML_SERVER_SESSION_H_
#define GPML_SERVER_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "eval/engine.h"
#include "graph/property_graph.h"

namespace gpml {
namespace server {

/// A server-side prepared-statement handle: the shared compiled plan
/// (through the graph's plan cache) plus the graph shared_ptr keeping it
/// valid. Session-scoped: handles are meaningless outside the session
/// that prepared them.
struct PreparedHandle {
  PreparedQuery query;
  std::shared_ptr<const PropertyGraph> graph;
  std::string text;  // The prepared MATCH text (diagnostics, slow log).
};

/// A server-side open cursor: the streaming Cursor plus the metrics
/// struct its executions write into (EngineOptions::metrics points here;
/// one struct per cursor, so interleaved cursors never clobber each
/// other's counters) and the running step count already charged to the
/// tenant's cumulative budget.
struct CursorHandle {
  std::unique_ptr<Cursor> cursor;
  std::unique_ptr<EngineMetrics> metrics;
  std::shared_ptr<const PropertyGraph> graph;
  uint64_t steps_charged = 0;
};

/// One client connection's server-side state: tenant identity, selected
/// graph, owned prepared statements and cursors, and the idle clock the
/// reaper checks. All fields are guarded by `mu` — the connection thread
/// and the reaper are the only writers, and the reaper only touches
/// sessions with no request in flight.
class ServerSession {
 public:
  ServerSession(uint64_t id, std::string tenant)
      : id_(id), tenant_(std::move(tenant)) {}

  uint64_t id() const { return id_; }
  const std::string& tenant() const { return tenant_; }

  /// Guards every mutable field below.
  std::mutex mu;

  std::shared_ptr<const PropertyGraph> graph;  // Selected via use_graph.
  std::string graph_name;
  std::map<int64_t, PreparedHandle> statements;
  std::map<int64_t, CursorHandle> cursors;
  int64_t next_handle = 1;

  /// Monotonic micros of the last request; the reaper compares against
  /// the idle timeout.
  uint64_t last_active_us = 0;
  /// Requests currently executing against this session (the reaper skips
  /// sessions with in_flight > 0).
  int in_flight = 0;
  /// Set by the reaper: statements and cursors are gone; every
  /// state-carrying op answers SESSION_EXPIRED from now on.
  bool expired = false;
  /// True once the session's admission slot was released (by the reaper
  /// or connection teardown) — guards against double release.
  bool admission_released = false;

 private:
  const uint64_t id_;
  const std::string tenant_;
};

/// The server's session table. Sessions are created at connection setup,
/// removed at connection teardown, and expired in place by ReapIdle when
/// idle past the timeout (the connection may still be open — its next
/// request gets a structured SESSION_EXPIRED error, not a disconnect).
class SessionRegistry {
 public:
  std::shared_ptr<ServerSession> Create(const std::string& tenant);
  void Remove(uint64_t id);
  std::shared_ptr<ServerSession> Find(uint64_t id) const;
  size_t size() const;

  /// Expires sessions idle for longer than `idle_us`: drops their
  /// statements and cursors, marks them expired, and reports them (the
  /// caller releases admission slots). Sessions with a request in flight
  /// are never reaped, whatever their clock says — an open cursor mid-
  /// fetch cannot be destroyed under the fetch.
  std::vector<std::shared_ptr<ServerSession>> ReapIdle(uint64_t now_us,
                                                       uint64_t idle_us);

  std::vector<std::shared_ptr<ServerSession>> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<ServerSession>> sessions_;
  uint64_t next_id_ = 1;
};

}  // namespace server
}  // namespace gpml

#endif  // GPML_SERVER_SESSION_H_
