#include "semantics/analyze.h"

#include <optional>
#include <string>

#include "common/source.h"
#include "semantics/normalize.h"

namespace gpml {

namespace {

/// One declaration site of a variable, with enough context to decide
/// co-bindability: two sites can bind in the same match run unless they sit
/// in different alternatives of the same union/alternation.
struct DeclSite {
  int decl_index = 0;                      // Which path declaration.
  std::vector<std::pair<int, int>> branch; // (union id, alternative index)*.
  int depth = 0;                           // Enclosing quantifier count.
  bool in_optional = false;                // Under a `?` somewhere.
  SourceSpan span;                         // Pattern bytes of the site.
};

/// " (offset=N)" when the span is known, "" for programmatic patterns.
/// The marker format matches the parser's, so the same snippet-attachment
/// helper decorates semantic errors at the API boundary.
std::string AtSpan(const SourceSpan& s) {
  return s.valid() ? " (offset=" + std::to_string(s.begin) + ")" : "";
}

/// A predicate (or projection) site with the quantifier depth of its
/// evaluation context.
struct ExprSite {
  ExprPtr expr;
  int depth = 0;
  bool inline_element = false;  // Node/edge inline WHERE (no aggregates).
};

bool CanCoBind(const DeclSite& a, const DeclSite& b) {
  if (a.decl_index != b.decl_index) return true;  // Cross-decl join.
  size_t n = std::min(a.branch.size(), b.branch.size());
  for (size_t i = 0; i < n; ++i) {
    if (a.branch[i].first != b.branch[i].first) break;
    if (a.branch[i].second != b.branch[i].second) {
      return false;  // Different alternatives of the same union: exclusive.
    }
  }
  return true;
}

}  // namespace

class AnalyzerImpl {
 public:
  Result<Analysis> Run(const GraphPattern& g) {
    // Pass 1: collect declarations and predicate sites.
    for (size_t i = 0; i < g.paths.size(); ++i) {
      const PathPatternDecl& d = g.paths[i];
      decl_index_ = static_cast<int>(i);
      if (!d.path_var.empty()) {
        GPML_RETURN_IF_ERROR(
            DeclarePath(d.path_var, static_cast<int>(i)));
      }
      GPML_RETURN_IF_ERROR(CollectPath(*d.pattern, /*certain=*/true));
    }
    if (g.where != nullptr) {
      exprs_.push_back({g.where, /*depth=*/0, /*inline_element=*/false});
    }

    // Pass 2: per-variable facts.
    GPML_RETURN_IF_ERROR(Finalize());

    // Pass 3: predicate rules.
    for (const ExprSite& site : exprs_) {
      GPML_RETURN_IF_ERROR(CheckExpr(*site.expr, site, /*in_agg=*/false));
    }
    return std::move(analysis_);
  }

 private:
  struct Collected {
    VarInfo::Kind kind;
    std::vector<DeclSite> sites;
    bool certain = false;  // Declared on every run of its declaring decl.
    std::vector<ExprPtr> wheres;
  };

  Status DeclarePath(const std::string& name, int decl_index) {
    Collected& c = collected_[name];
    if (!c.sites.empty() && c.kind != VarInfo::Kind::kPath) {
      return Status::SemanticError("variable " + name +
                                   " used both as path and element variable");
    }
    c.kind = VarInfo::Kind::kPath;
    DeclSite site;
    site.decl_index = decl_index;
    c.sites.push_back(site);
    c.certain = true;
    return Status::OK();
  }

  Status Declare(const std::string& name, VarInfo::Kind kind, ExprPtr where,
                 const SourceSpan& span) {
    auto it = collected_.find(name);
    if (it == collected_.end()) {
      Collected c;
      c.kind = kind;
      collected_.emplace(name, std::move(c));
      it = collected_.find(name);
    } else if (it->second.kind != kind) {
      return Status::SemanticError(
          "variable " + name + " used with conflicting element kinds" +
          AtSpan(span));
    }
    DeclSite site;
    site.decl_index = decl_index_;
    site.branch = branch_;
    site.depth = depth_;
    site.in_optional = optional_depth_ > 0;
    site.span = span;
    it->second.sites.push_back(std::move(site));
    if (where != nullptr) {
      if (where->ContainsAggregate()) {
        return Status::SemanticError(
            "aggregate not allowed in an inline node/edge predicate (on " +
            name + ")" + AtSpan(where->span));
      }
      exprs_.push_back({std::move(where), depth_, /*inline_element=*/true});
    }
    return Status::OK();
  }

  /// Walks a path pattern. `certain` tells whether this subtree executes on
  /// every run of the declaring path pattern (false under `?` and under
  /// union alternatives); certainty feeds the conditional-singleton rule.
  Status CollectPath(const PathPattern& p, bool certain) {
    switch (p.kind) {
      case PathPattern::Kind::kConcat:
        for (const PathElement& e : p.elements) {
          GPML_RETURN_IF_ERROR(CollectElement(e, certain));
        }
        return Status::OK();
      case PathPattern::Kind::kUnion:
      case PathPattern::Kind::kAlternation: {
        int union_id = ++union_counter_;
        // A variable is certain across a union only if declared in every
        // alternative; handled by joining per-alternative certainty in
        // Finalize(), so mark subtree declarations with their branch and
        // record the union arity.
        union_arity_[union_id] =
            static_cast<int>(p.alternatives.size());
        for (size_t i = 0; i < p.alternatives.size(); ++i) {
          branch_.push_back({union_id, static_cast<int>(i)});
          GPML_RETURN_IF_ERROR(CollectPath(*p.alternatives[i], certain));
          branch_.pop_back();
        }
        return Status::OK();
      }
    }
    return Status::Internal("unknown path pattern kind");
  }

  Status CollectElement(const PathElement& e, bool certain) {
    switch (e.kind) {
      case PathElement::Kind::kNode:
        return Declare(e.node.var, VarInfo::Kind::kNode, e.node.where,
                       e.node.span);
      case PathElement::Kind::kEdge:
        return Declare(e.edge.var, VarInfo::Kind::kEdge, e.edge.where,
                       e.edge.span);
      case PathElement::Kind::kParen: {
        if (e.where != nullptr) {
          exprs_.push_back({e.where, depth_, /*inline_element=*/false});
        }
        return CollectPath(*e.sub, certain);
      }
      case PathElement::Kind::kQuantified: {
        ++depth_;
        // The per-iteration WHERE evaluates inside the quantifier (§4.4).
        if (e.where != nullptr) {
          exprs_.push_back({e.where, depth_, /*inline_element=*/false});
        }
        Status st = CollectPath(*e.sub, certain && e.min > 0);
        --depth_;
        return st;
      }
      case PathElement::Kind::kOptional: {
        ++optional_depth_;
        if (e.where != nullptr) {
          exprs_.push_back({e.where, depth_, /*inline_element=*/false});
        }
        Status st = CollectPath(*e.sub, /*certain=*/false);
        --optional_depth_;
        return st;
      }
    }
    return Status::Internal("unknown path element kind");
  }

  Status Finalize() {
    for (auto& [name, c] : collected_) {
      VarInfo info;
      info.name = name;
      info.kind = c.kind;
      info.anonymous = IsAnonymousVar(name);

      if (c.kind != VarInfo::Kind::kPath) {
        // All declarations must agree on quantifier depth: a variable may
        // not be declared both inside and outside a quantifier.
        int depth = c.sites.front().depth;
        for (const DeclSite& s : c.sites) {
          if (s.depth != depth) {
            return Status::SemanticError(
                "variable " + name +
                " declared both inside and outside a quantifier" +
                AtSpan(s.span));
          }
        }
        info.depth = depth;
        info.group = depth > 0;
        info.conditional = ComputeConditional(c);

        if (info.conditional) {
          // §4.6: implicit equi-joins on conditional singletons are illegal.
          for (size_t i = 0; i < c.sites.size(); ++i) {
            for (size_t j = i + 1; j < c.sites.size(); ++j) {
              if (CanCoBind(c.sites[i], c.sites[j])) {
                return Status::SemanticError(
                    "illegal implicit equi-join on conditional singleton " +
                    name + AtSpan(c.sites[j].span));
              }
            }
          }
        }
      }

      for (const DeclSite& s : c.sites) {
        if (info.decls.empty() || info.decls.back() != s.decl_index) {
          info.decls.push_back(s.decl_index);
        }
      }
      analysis_.vars_.emplace(name, std::move(info));
    }
    return Status::OK();
  }

  /// A variable is conditional when any declaration site may fail to bind:
  /// the site sits under `?`, or under some union alternative whose sibling
  /// alternatives do not all declare the variable (§4.6: y and z in
  /// [(x)->(y)] | [(x)->(z)] are conditional, x is not). A union site is
  /// certain when the variable is declared in *all* alternatives of each
  /// union on its branch path, checked level by level.
  bool ComputeConditional(const Collected& c) {
    for (const DeclSite& site : c.sites) {
      if (!SiteIsCertain(c, site)) return true;
    }
    return false;
  }

  bool SiteIsCertain(const Collected& c, const DeclSite& site) {
    {
      if (site.in_optional) return false;    // `?` sites are never certain.
      if (site.branch.empty()) return true;  // Top-level declaration.
      // Check that for each union on the site's branch path, every
      // alternative of that union contains a declaration with the same
      // prefix.
      bool certain = true;
      std::vector<std::pair<int, int>> prefix;
      for (const auto& [union_id, alt] : site.branch) {
        int arity = union_arity_[union_id];
        for (int a = 0; a < arity && certain; ++a) {
          bool found = false;
          for (const DeclSite& other : c.sites) {
            if (other.in_optional) continue;
            if (other.branch.size() <= prefix.size()) continue;
            if (!std::equal(prefix.begin(), prefix.end(),
                            other.branch.begin())) {
              continue;
            }
            if (other.branch[prefix.size()] ==
                std::make_pair(union_id, a)) {
              found = true;
              break;
            }
          }
          if (!found) certain = false;
        }
        if (!certain) break;
        prefix.push_back({union_id, alt});
      }
      return certain;
    }
  }

  Status CheckExpr(const Expr& e, const ExprSite& site, bool in_agg) {
    switch (e.kind) {
      case Expr::Kind::kVarRef:
      case Expr::Kind::kPropertyAccess: {
        GPML_RETURN_IF_ERROR(RequireDeclared(e.var, e.span));
        const VarInfo& v = analysis_.vars_.at(e.var);
        if (v.kind != VarInfo::Kind::kPath && v.depth > site.depth &&
            !in_agg) {
          return Status::SemanticError(
              "group variable " + e.var +
              " referenced across its quantifier without aggregation" +
              AtSpan(e.span));
        }
        return Status::OK();
      }
      case Expr::Kind::kPathLength: {
        GPML_RETURN_IF_ERROR(RequireDeclared(e.var, e.span));
        if (analysis_.vars_.at(e.var).kind != VarInfo::Kind::kPath) {
          return Status::SemanticError("PATH_LENGTH expects a path variable" +
                                       AtSpan(e.span));
        }
        return Status::OK();
      }
      case Expr::Kind::kIsDirected: {
        return RequireElement(e.var, VarInfo::Kind::kEdge, "IS DIRECTED",
                              e.span);
      }
      case Expr::Kind::kIsSourceOf:
      case Expr::Kind::kIsDestinationOf: {
        GPML_RETURN_IF_ERROR(RequireElement(e.var, VarInfo::Kind::kNode,
                                            "IS SOURCE OF", e.span));
        return RequireElement(e.var2, VarInfo::Kind::kEdge, "IS SOURCE OF",
                              e.span);
      }
      case Expr::Kind::kSame:
      case Expr::Kind::kAllDifferent: {
        const char* what =
            e.kind == Expr::Kind::kSame ? "SAME" : "ALL_DIFFERENT";
        for (const std::string& v : e.vars) {
          GPML_RETURN_IF_ERROR(RequireDeclared(v, e.span));
          const VarInfo& info = analysis_.vars_.at(v);
          if (info.kind == VarInfo::Kind::kPath) {
            return Status::SemanticError(std::string(what) +
                                         " expects element variables" +
                                         AtSpan(e.span));
          }
          // §4.7: arguments must be unconditional singletons.
          if (info.conditional) {
            return Status::SemanticError(
                std::string(what) + " argument " + v +
                " is a conditional singleton" + AtSpan(e.span));
          }
          if (info.depth > site.depth) {
            return Status::SemanticError(std::string(what) + " argument " +
                                         v + " is a group variable" +
                                         AtSpan(e.span));
          }
        }
        return Status::OK();
      }
      case Expr::Kind::kAggregate:
        if (site.inline_element) {
          return Status::SemanticError(
              "aggregate not allowed in inline element predicate" +
              AtSpan(e.span));
        }
        return CheckExpr(*e.arg, site, /*in_agg=*/true);
      case Expr::Kind::kBinary:
        GPML_RETURN_IF_ERROR(CheckExpr(*e.lhs, site, in_agg));
        return CheckExpr(*e.rhs, site, in_agg);
      case Expr::Kind::kNot:
      case Expr::Kind::kIsNull:
        return CheckExpr(*e.lhs, site, in_agg);
      case Expr::Kind::kLiteral:
      case Expr::Kind::kParam:  // Bound per execution; no variable to check.
        return Status::OK();
    }
    return Status::Internal("unknown expression kind");
  }

  Status RequireDeclared(const std::string& var, const SourceSpan& span) {
    if (analysis_.vars_.count(var) == 0) {
      return Status::SemanticError("undeclared variable " + var +
                                   AtSpan(span));
    }
    return Status::OK();
  }

  Status RequireElement(const std::string& var, VarInfo::Kind kind,
                        const char* what, const SourceSpan& span) {
    GPML_RETURN_IF_ERROR(RequireDeclared(var, span));
    if (analysis_.vars_.at(var).kind != kind) {
      return Status::SemanticError(std::string(what) +
                                   ": wrong element kind for " + var +
                                   AtSpan(span));
    }
    return Status::OK();
  }

  Analysis analysis_;
  std::map<std::string, Collected> collected_;
  std::vector<ExprSite> exprs_;
  std::map<int, int> union_arity_;
  std::vector<std::pair<int, int>> branch_;
  int decl_index_ = 0;
  int depth_ = 0;
  int optional_depth_ = 0;
  int union_counter_ = 0;
};

Result<Analysis> Analyze(const GraphPattern& normalized) {
  AnalyzerImpl impl;
  return impl.Run(normalized);
}

}  // namespace gpml
