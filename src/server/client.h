#ifndef GPML_SERVER_CLIENT_H_
#define GPML_SERVER_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "eval/params.h"
#include "server/json.h"
#include "server/protocol.h"

namespace gpml {
namespace server {

/// One result row as received: the exact bytes the server serialized
/// (RowToJson output, byte-identical to an in-process ExportJson row —
/// bench_server diffs them) plus the parsed tree for convenience.
struct ClientRow {
  std::string raw;  // Verbatim row object bytes from the response.
  JsonValue parsed;
};

/// The outcome of execute/fetch beyond the rows themselves.
struct ExecuteResult {
  std::vector<ClientRow> rows;
  bool truncated = false;  // Budget tripped under BudgetPolicy::kTruncate.
  bool hit_limit = false;  // Stream ended by the requested LIMIT.
  bool done = true;        // fetch: stream exhausted (execute: always).
};

/// What hello reports about the server.
struct HelloInfo {
  int protocol = 0;
  uint64_t session_id = 0;
  std::string tenant;
};

/// A blocking client for the NDJSON wire protocol (docs/server.md) — the
/// reference implementation the server tests and bench_server drive.
/// One Client is one connection is one server session; not thread-safe
/// (open one Client per thread, as bench_server does).
///
/// Error handling: transport failures and server error responses both
/// surface as non-OK Status. Server errors reconstruct the original
/// StatusCode through the shared wire-error table (protocol.h), with the
/// machine-readable reason (SESSION_EXPIRED, SERVER_SATURATED, ...)
/// retrievable from last_reason() after any failed call.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and sends hello under `tenant` ("" = the default tenant).
  static Result<Client> Connect(const std::string& host, int port,
                                const std::string& tenant = "");

  bool connected() const { return fd_ >= 0; }
  void Close();

  const HelloInfo& hello() const { return hello_; }

  /// The error.reason of the most recent failed call ("" when the failure
  /// was transport-level or the server sent no reason).
  const std::string& last_reason() const { return last_reason_; }

  Status Ping();
  /// Polite teardown (server closes after acknowledging).
  Status Bye();

  Result<std::vector<std::string>> ListGraphs();
  /// Asks the server to materialize a generator graph under `name`;
  /// returns whether it was created now (false: name already existed).
  Result<bool> LoadGraph(const std::string& name, const std::string& kind,
                         const std::string& extra_fields = "");
  Status UseGraph(const std::string& name);

  /// Prepares `query`, returning the server-side statement handle.
  struct PreparedInfo {
    int64_t stmt = 0;
    std::vector<std::string> params;  // $names the query binds.
    bool from_cache = false;
    bool always_empty = false;
  };
  Result<PreparedInfo> Prepare(const std::string& query);
  Status CloseStatement(int64_t stmt);

  /// One-shot execution of a prepared handle.
  Result<ExecuteResult> Execute(int64_t stmt, const Params& params = {},
                                std::optional<uint64_t> limit = std::nullopt);

  /// Cursor paging: Open, then Fetch until done, then CloseCursor.
  Result<int64_t> Open(int64_t stmt, const Params& params = {},
                       std::optional<uint64_t> limit = std::nullopt);
  Result<ExecuteResult> Fetch(int64_t cursor, int64_t max_rows = 256);
  Status CloseCursor(int64_t cursor);

  Result<std::string> Explain(const std::string& query);
  /// The server's Prometheus rendering (same text as GET /metrics).
  Result<std::string> Metrics();
  /// Slow-query records as a raw JSON array ("" = all graphs).
  Result<std::string> SlowQueries(const std::string& graph = "");
  /// Per-fingerprint workload statistics as a raw JSON array, sorted by
  /// total time descending ("" = no graph / tenant filter) — same JSON
  /// the HTTP /query_stats endpoint serves.
  Result<std::string> QueryStats(const std::string& graph = "",
                                 const std::string& tenant = "");
  /// debug_sleep (test servers only; see ServerOptions::enable_debug_ops).
  Status DebugSleep(int64_t ms);

  /// Sends one raw request line and returns the parsed response plus its
  /// raw bytes — the escape hatch tests use for malformed requests.
  struct RawResponse {
    std::string raw;
    JsonValue parsed;
  };
  Result<RawResponse> RoundTrip(const std::string& request_line);

 private:
  /// RoundTrip plus the standard envelope handling: a transport failure or
  /// `"ok":false` response becomes a non-OK Status (reconstructed through
  /// the wire table, reason stashed in last_reason_).
  Result<RawResponse> Call(const std::string& request_line);

  Result<ExecuteResult> DecodeRows(const RawResponse& response);

  int fd_ = -1;
  HelloInfo hello_;
  std::string last_reason_;
  std::string read_buf_;
  size_t read_pos_ = 0;
};

}  // namespace server
}  // namespace gpml

#endif  // GPML_SERVER_CLIENT_H_
