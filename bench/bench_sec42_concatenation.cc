// E7 (§4.2): concatenation cost as the pattern lengthens — k-hop chains on
// the scaled banking graph. Expected shape: work grows with the number of
// partial matches, i.e. roughly with (average out-degree)^k.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace gpml {
namespace {

using bench::RunOrDie;

PropertyGraph& Graph() {
  static PropertyGraph* g = new PropertyGraph([] {
    FraudGraphOptions options;
    options.num_accounts = 300;
    options.transfers_per_account = 3;
    return MakeFraudGraph(options);
  }());
  return *g;
}

std::string HopQuery(int hops) {
  std::string q = "MATCH (n0:Account)";
  for (int i = 1; i <= hops; ++i) {
    q += "-[:Transfer]->(n" + std::to_string(i) + ")";
  }
  return q;
}

void BM_Sec42_KHopChains(benchmark::State& state) {
  PropertyGraph& g = Graph();
  std::string query = HopQuery(static_cast<int>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunOrDie(g, query);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Sec42_KHopChains)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_Sec42_MixedOrientationChain(benchmark::State& state) {
  // The §4.2 phone/transfer two-hop: one undirected, one directed leg.
  PropertyGraph& g = Graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(
        g,
        "MATCH (p:Phone)~[e:hasPhone]~(a1:Account)"
        "-[t:Transfer WHERE t.amount>1M]->(a2)"));
  }
}
BENCHMARK(BM_Sec42_MixedOrientationChain)->Unit(benchmark::kMillisecond);

void BM_Sec42_SharedPhonePattern(benchmark::State& state) {
  // The §4.2 closing example: p appears at both ends (implicit equi-join).
  PropertyGraph& g = Graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(
        g,
        "MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->"
        "(d:Account)~[:hasPhone]~(p)"));
  }
}
BENCHMARK(BM_Sec42_SharedPhonePattern)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gpml
