#include "analysis/satisfiability.h"

#include <map>
#include <utility>

namespace gpml {
namespace analysis {
namespace {

std::optional<TriBool> ValueToTri(const Value& v) {
  if (v.is_null()) return TriBool::kUnknown;
  if (v.is_bool()) return v.bool_value() ? TriBool::kTrue : TriBool::kFalse;
  return std::nullopt;  // Non-boolean in predicate position: type error.
}

Value TriToValue(TriBool t) {
  switch (t) {
    case TriBool::kTrue: return Value::Bool(true);
    case TriBool::kFalse: return Value::Bool(false);
    case TriBool::kUnknown: return Value::Null();
  }
  return Value::Null();
}

std::optional<Value> FoldComparison(BinaryOp op, const Value& l,
                                    const Value& r) {
  if (op == BinaryOp::kEq) return TriToValue(Value::SqlEquals(l, r));
  if (op == BinaryOp::kNeq) return TriToValue(TriNot(Value::SqlEquals(l, r)));
  // Ordered: runtime CompareValues yields UNKNOWN for NULL operands and for
  // incomparable types, which SqlCompare reports as errors — fold to NULL.
  Result<int> cmp = Value::SqlCompare(l, r);
  if (!cmp.ok()) return Value::Null();
  int c = cmp.value();
  bool out = false;
  switch (op) {
    case BinaryOp::kLt: out = c < 0; break;
    case BinaryOp::kLe: out = c <= 0; break;
    case BinaryOp::kGt: out = c > 0; break;
    case BinaryOp::kGe: out = c >= 0; break;
    default: return std::nullopt;
  }
  return Value::Bool(out);
}

std::optional<Value> FoldArithmetic(BinaryOp op, const Value& l,
                                    const Value& r) {
  Result<Value> v = Status::Internal("unreachable");
  switch (op) {
    case BinaryOp::kAdd: v = Value::Add(l, r); break;
    case BinaryOp::kSub: v = Value::Subtract(l, r); break;
    case BinaryOp::kMul: v = Value::Multiply(l, r); break;
    case BinaryOp::kDiv: v = Value::Divide(l, r); break;
    default: return std::nullopt;
  }
  if (!v.ok()) return std::nullopt;  // Type error / division by zero.
  return std::move(v).value();
}

}  // namespace

std::optional<Value> FoldConstant(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;

    case Expr::Kind::kBinary: {
      if (e.lhs == nullptr || e.rhs == nullptr) return std::nullopt;
      std::optional<Value> l = FoldConstant(*e.lhs);
      std::optional<Value> r = FoldConstant(*e.rhs);
      if (!l || !r) return std::nullopt;
      switch (e.op) {
        case BinaryOp::kEq:
        case BinaryOp::kNeq:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return FoldComparison(e.op, *l, *r);
        case BinaryOp::kAnd:
        case BinaryOp::kOr: {
          std::optional<TriBool> lt = ValueToTri(*l);
          std::optional<TriBool> rt = ValueToTri(*r);
          if (!lt || !rt) return std::nullopt;
          return TriToValue(e.op == BinaryOp::kAnd ? TriAnd(*lt, *rt)
                                                   : TriOr(*lt, *rt));
        }
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
          return FoldArithmetic(e.op, *l, *r);
      }
      return std::nullopt;
    }

    case Expr::Kind::kNot: {
      if (e.lhs == nullptr) return std::nullopt;
      std::optional<Value> v = FoldConstant(*e.lhs);
      if (!v) return std::nullopt;
      std::optional<TriBool> t = ValueToTri(*v);
      if (!t) return std::nullopt;
      return TriToValue(TriNot(*t));
    }

    case Expr::Kind::kIsNull: {
      if (e.lhs == nullptr) return std::nullopt;
      std::optional<Value> v = FoldConstant(*e.lhs);
      if (!v) return std::nullopt;
      bool is_null = v->is_null();
      return Value::Bool(e.negated ? !is_null : is_null);
    }

    default:
      // Parameters, variables, properties, aggregates, §4.7 predicates:
      // binding-dependent, never folded.
      return std::nullopt;
  }
}

std::optional<TriBool> FoldPredicate(const Expr& e) {
  if (e.kind == Expr::Kind::kBinary &&
      (e.op == BinaryOp::kAnd || e.op == BinaryOp::kOr)) {
    std::optional<TriBool> l =
        e.lhs != nullptr ? FoldPredicate(*e.lhs) : std::nullopt;
    std::optional<TriBool> r =
        e.rhs != nullptr ? FoldPredicate(*e.rhs) : std::nullopt;
    if (e.op == BinaryOp::kAnd) {
      // FALSE short-circuits past non-constant operands.
      if (l == TriBool::kFalse || r == TriBool::kFalse) return TriBool::kFalse;
      if (l && r) return TriAnd(*l, *r);
    } else {
      if (l == TriBool::kTrue || r == TriBool::kTrue) return TriBool::kTrue;
      if (l && r) return TriOr(*l, *r);
    }
    return std::nullopt;
  }
  if (e.kind == Expr::Kind::kNot && e.lhs != nullptr) {
    std::optional<TriBool> t = FoldPredicate(*e.lhs);
    if (t) return TriNot(*t);
    return std::nullopt;
  }
  std::optional<Value> v = FoldConstant(e);
  if (!v) return std::nullopt;
  return ValueToTri(*v);
}

bool ContainsParam(const Expr& e) {
  if (e.kind == Expr::Kind::kParam) return true;
  if (e.lhs != nullptr && ContainsParam(*e.lhs)) return true;
  if (e.rhs != nullptr && ContainsParam(*e.rhs)) return true;
  if (e.arg != nullptr && ContainsParam(*e.arg)) return true;
  return false;
}

void FlattenAnd(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kBinary && e->op == BinaryOp::kAnd) {
    FlattenAnd(e->lhs, out);
    FlattenAnd(e->rhs, out);
    return;
  }
  out->push_back(e);
}

namespace {

// Matches a conjunct of the shape `var.prop = literal` (either side order);
// returns the two halves or nullptrs.
std::pair<const Expr*, const Expr*> AsPropertyEquality(const Expr& e) {
  if (e.kind != Expr::Kind::kBinary || e.op != BinaryOp::kEq ||
      e.lhs == nullptr || e.rhs == nullptr) {
    return {nullptr, nullptr};
  }
  const Expr* l = e.lhs.get();
  const Expr* r = e.rhs.get();
  if (l->kind == Expr::Kind::kPropertyAccess &&
      r->kind == Expr::Kind::kLiteral) {
    return {l, r};
  }
  if (r->kind == Expr::Kind::kPropertyAccess &&
      l->kind == Expr::Kind::kLiteral) {
    return {r, l};
  }
  return {nullptr, nullptr};
}

}  // namespace

bool PredicateUnsatisfiable(const ExprPtr& where, DiagnosticList* diags,
                            bool emit_always_true) {
  if (where == nullptr) return false;
  if (std::optional<TriBool> t = FoldPredicate(*where)) {
    if (*t == TriBool::kTrue) {
      if (emit_always_true) {
        diags->Add(kCodeAlwaysTrue, Severity::kWarning, where->span,
                   "WHERE clause is always true",
                   "the predicate filters nothing and can be removed");
      }
      return false;
    }
    diags->Add(kCodeAlwaysFalse, Severity::kWarning, where->span,
               *t == TriBool::kFalse ? "WHERE clause is always false"
                                     : "WHERE clause is always UNKNOWN",
               "no binding can satisfy this predicate");
    return true;
  }

  // Contradictory property equalities along the top-level AND chain:
  // `x.a = 1 AND x.a = 2` can never both hold (each row has one value).
  std::vector<ExprPtr> conjuncts;
  FlattenAnd(where, &conjuncts);
  struct Prior { Value value; SourceSpan span; };
  std::map<std::pair<std::string, std::string>, Prior> seen;
  for (const ExprPtr& c : conjuncts) {
    auto [prop, lit] = AsPropertyEquality(*c);
    if (prop == nullptr) continue;
    if (lit->literal.is_null()) {
      // `= NULL` is UNKNOWN for every row; an AND chain containing it can
      // never be TRUE.
      diags->Add(kCodeAlwaysFalse, Severity::kWarning, c->span,
                 "comparison with NULL is always UNKNOWN",
                 "use IS NULL to test for NULL");
      return true;
    }
    auto key = std::make_pair(prop->var, prop->property);
    auto it = seen.find(key);
    if (it == seen.end()) {
      seen.emplace(std::move(key), Prior{lit->literal, c->span});
      continue;
    }
    if (Value::SqlEquals(it->second.value, lit->literal) != TriBool::kTrue) {
      diags->Add(kCodeContradictoryEq, Severity::kWarning, c->span,
                 "property " + prop->var + "." + prop->property +
                     " is required to equal two different constants",
                 "conflicts with the earlier equality at offset=" +
                     std::to_string(it->second.span.begin));
      return true;
    }
  }
  return false;
}

ExprPtr DropAlwaysTrueConjuncts(const ExprPtr& where, DiagnosticList* diags) {
  if (where == nullptr) return nullptr;
  std::vector<ExprPtr> conjuncts;
  FlattenAnd(where, &conjuncts);
  std::vector<ExprPtr> kept;
  kept.reserve(conjuncts.size());
  bool dropped = false;
  for (const ExprPtr& c : conjuncts) {
    std::optional<TriBool> t = FoldPredicate(*c);
    // Parameter-bearing conjuncts are kept even when they short-circuit to
    // TRUE (`TRUE OR $p`): dropping them would shrink the ParamSignature.
    if (t == TriBool::kTrue && !ContainsParam(*c)) {
      diags->Add(kCodeAlwaysTrue, Severity::kWarning, c->span,
                 "conjunct is always true and does not filter rows",
                 "removed from the compiled plan (TRUE AND p = p)");
      dropped = true;
      continue;
    }
    kept.push_back(c);
  }
  if (!dropped) return where;
  if (kept.empty()) return nullptr;
  ExprPtr out = kept[0];
  for (size_t i = 1; i < kept.size(); ++i) {
    out = Expr::Binary(BinaryOp::kAnd, out, kept[i]);
  }
  return out;
}

namespace {

// Collects label names *required* by `e` (positive spine) and names
// *forbidden* by it, distributing negation by De Morgan where the result
// stays a conjunction of requirements. `neg_wildcard` records a required
// `!%` (element must be label-less).
void CollectRequirements(const LabelExpr& e, bool negated,
                         std::vector<std::string>* required,
                         std::vector<std::string>* forbidden,
                         bool* neg_wildcard) {
  switch (e.kind) {
    case LabelExpr::Kind::kName:
      (negated ? forbidden : required)->push_back(e.name);
      return;
    case LabelExpr::Kind::kWildcard:
      if (negated) *neg_wildcard = true;
      return;
    case LabelExpr::Kind::kNot:
      if (e.left != nullptr) {
        CollectRequirements(*e.left, !negated, required, forbidden,
                            neg_wildcard);
      }
      return;
    case LabelExpr::Kind::kAnd:
      if (negated) return;  // !(A&B) is a disjunction — nothing required.
      break;
    case LabelExpr::Kind::kOr:
      if (!negated) return;  // A|B requires no single name.
      break;
  }
  if (e.left != nullptr) {
    CollectRequirements(*e.left, negated, required, forbidden, neg_wildcard);
  }
  if (e.right != nullptr) {
    CollectRequirements(*e.right, negated, required, forbidden, neg_wildcard);
  }
}

}  // namespace

bool LabelConjunctionContradicts(const LabelExpr& labels,
                                 std::string* conflicted) {
  std::vector<std::string> required;
  std::vector<std::string> forbidden;
  bool neg_wildcard = false;
  CollectRequirements(labels, /*negated=*/false, &required, &forbidden,
                      &neg_wildcard);
  for (const std::string& r : required) {
    if (neg_wildcard) {
      // `A & !%` — a required name on an element required to be label-less.
      *conflicted = r;
      return true;
    }
    for (const std::string& f : forbidden) {
      if (r == f) {
        *conflicted = r;
        return true;
      }
    }
  }
  return false;
}

}  // namespace analysis
}  // namespace gpml
