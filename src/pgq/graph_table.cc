#include "pgq/graph_table.h"

#include <cctype>

#include "gql/result_table.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/snapshot_filter.h"
#include "parser/parser.h"
#include "planner/explain.h"

namespace gpml {

Result<Table> GraphTable(const Catalog& catalog, const GraphTableQuery& query,
                         EngineOptions options) {
  GPML_ASSIGN_OR_RETURN(std::shared_ptr<const PropertyGraph> graph,
                        catalog.GetGraph(query.graph));
  Engine engine(*graph, options);
  std::string rest;
  if (planner::StripExplainPrefix(query.match, &rest)) {
    std::string analyzed;
    if (planner::StripAnalyzePrefix(rest, &analyzed)) {
      // ANALYZE executes the MATCH part only (COLUMNS is ignored, as for
      // plain EXPLAIN): COLUMNS-only parameter bindings are dropped, any
      // other stray name is the usual unknown-parameter error.
      GPML_ASSIGN_OR_RETURN(GraphPattern pattern,
                            ParseGraphPattern(analyzed));
      GPML_ASSIGN_OR_RETURN(std::vector<ReturnItem> items,
                            ParseColumns(query.columns));
      GPML_ASSIGN_OR_RETURN(
          Params pattern_params,
          PatternOnlyParams(CollectPatternParams(pattern),
                            CollectItemParams(items), query.params));
      GPML_ASSIGN_OR_RETURN(std::string text,
                            engine.ExplainAnalyze(pattern, pattern_params));
      return planner::ExplainTable(text);
    }
    GPML_ASSIGN_OR_RETURN(std::string text, engine.Explain(rest));
    return planner::ExplainTable(text);
  }
  // Prepare-bind-cursor: one compiled plan per parameterized match text
  // (shared via the graph's plan cache), values bound per call, rows
  // streamed through the COLUMNS projection.
  GPML_ASSIGN_OR_RETURN(PreparedQuery prepared, engine.Prepare(query.match));
  GPML_ASSIGN_OR_RETURN(std::vector<ReturnItem> items,
                        ParseColumns(query.columns));
  prepared.ExtendSignature(CollectItemParams(items));
  GPML_ASSIGN_OR_RETURN(Cursor cursor,
                        prepared.Open(query.params, query.limit));
  // SQL semantics: GRAPH_TABLE yields a bag; no implicit DISTINCT.
  return ProjectCursor(cursor, *graph, items, /*distinct=*/false,
                       query.limit);
}

Result<std::string> GraphTableMetricsText(const Catalog& catalog,
                                          const std::string& graph) {
  GPML_ASSIGN_OR_RETURN(std::shared_ptr<const PropertyGraph> g,
                        catalog.GetGraph(graph));
  return obs::RenderPrometheus(*g->metrics_registry());
}

Result<analysis::DiagnosticList> GraphTableLint(const Catalog& catalog,
                                                const GraphTableQuery& query,
                                                EngineOptions options) {
  GPML_ASSIGN_OR_RETURN(std::shared_ptr<const PropertyGraph> graph,
                        catalog.GetGraph(query.graph));
  Engine engine(*graph, options);
  // Lint sees the text exactly as Prepare would: a leading EXPLAIN
  // [ANALYZE] is stripped, not diagnosed as a parse error.
  std::string text = query.match;
  std::string rest;
  if (planner::StripExplainPrefix(text, &rest)) text = rest;
  if (planner::StripAnalyzePrefix(text, &rest)) text = rest;
  return engine.Lint(text);
}

Result<std::vector<obs::SlowQueryRecord>> GraphTableSlowQueries(
    const Catalog& catalog, const std::string& graph,
    const obs::SlowQueryLog* log) {
  GPML_ASSIGN_OR_RETURN(std::shared_ptr<const PropertyGraph> g,
                        catalog.GetGraph(graph));
  const obs::SlowQueryLog& source =
      log != nullptr ? *log : obs::GlobalSlowQueryLog();
  return obs::FilterByGraphToken(source.Snapshot(), g->identity_token());
}

Result<std::vector<obs::QueryStatEntry>> GraphTableQueryStats(
    const Catalog& catalog, const std::string& graph,
    const obs::QueryStatsStore* store) {
  GPML_ASSIGN_OR_RETURN(std::shared_ptr<const PropertyGraph> g,
                        catalog.GetGraph(graph));
  const obs::QueryStatsStore& source =
      store != nullptr ? *store : obs::GlobalQueryStats();
  return obs::FilterByGraphToken(source.Snapshot(), g->identity_token());
}

Result<GraphTableQuery> ParseGraphTableCall(const std::string& sql) {
  // Lightweight surface parser: GRAPH_TABLE ( <name> , MATCH <pattern...>
  // COLUMNS ( <items> ) ) with arbitrary whitespace/case.
  auto find_ci = [&](const std::string& needle, size_t from) {
    for (size_t i = from; i + needle.size() <= sql.size(); ++i) {
      bool match = true;
      for (size_t j = 0; j < needle.size(); ++j) {
        if (std::toupper(sql[i + j]) != std::toupper(needle[j])) {
          match = false;
          break;
        }
      }
      if (match) return i;
    }
    return std::string::npos;
  };

  size_t gt = find_ci("GRAPH_TABLE", 0);
  if (gt == std::string::npos) {
    return Status::SyntaxError("expected GRAPH_TABLE(...)");
  }
  size_t open = sql.find('(', gt);
  if (open == std::string::npos) {
    return Status::SyntaxError("expected ( after GRAPH_TABLE");
  }
  size_t comma = sql.find(',', open);
  if (comma == std::string::npos) {
    return Status::SyntaxError("expected graph name argument");
  }
  GraphTableQuery q;
  q.graph = sql.substr(open + 1, comma - open - 1);
  // Trim whitespace.
  while (!q.graph.empty() && std::isspace(static_cast<unsigned char>(
                                 q.graph.front()))) {
    q.graph.erase(q.graph.begin());
  }
  while (!q.graph.empty() &&
         std::isspace(static_cast<unsigned char>(q.graph.back()))) {
    q.graph.pop_back();
  }

  size_t columns_kw = find_ci("COLUMNS", comma);
  if (columns_kw == std::string::npos) {
    return Status::SyntaxError("expected COLUMNS clause");
  }
  q.match = sql.substr(comma + 1, columns_kw - comma - 1);

  size_t cols_open = sql.find('(', columns_kw);
  if (cols_open == std::string::npos) {
    return Status::SyntaxError("expected ( after COLUMNS");
  }
  // Match the closing parenthesis of the COLUMNS list.
  int depth = 1;
  size_t i = cols_open + 1;
  for (; i < sql.size() && depth > 0; ++i) {
    if (sql[i] == '(') ++depth;
    if (sql[i] == ')') --depth;
  }
  if (depth != 0) return Status::SyntaxError("unbalanced COLUMNS list");
  q.columns = sql.substr(cols_open + 1, i - cols_open - 2);
  return q;
}

}  // namespace gpml
