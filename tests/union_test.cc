#include <gtest/gtest.h>

#include "graph/sample_graph.h"
#include "test_util.h"

namespace gpml {
namespace {

using testing_util::CountRows;
using testing_util::Rows;

// E10: path pattern union (set) vs multiset alternation (§4.5).

TEST(UnionTest, PaperCityCountryUnionDeduplicates) {
  PropertyGraph g = BuildPaperGraph();
  // §4.5: union produces one binding to c1 and one to c2.
  EXPECT_EQ(Rows(g, "MATCH (c:City) | (c:Country)", "c"),
            (std::vector<std::string>{"c1", "c2"}));
}

TEST(UnionTest, PaperCityCountryAlternationKeepsMultiplicity) {
  PropertyGraph g = BuildPaperGraph();
  // §4.5: alternation returns three results — c1 once, c2 twice.
  EXPECT_EQ(Rows(g, "MATCH (c:City) |+| (c:Country)", "c"),
            (std::vector<std::string>{"c1", "c2", "c2"}));
}

TEST(UnionTest, OverlappingQuantifiersDeduplicate) {
  PropertyGraph g = BuildPaperGraph();
  // §4.5: ->{1,5} | ->{3,7} ≡ ->{1,7} under union.
  EXPECT_EQ(CountRows(g, "MATCH ->{1,5} | ->{3,7}"),
            CountRows(g, "MATCH ->{1,7}"));
}

TEST(UnionTest, OverlappingQuantifiersAlternationDoesNot) {
  PropertyGraph g = BuildPaperGraph();
  size_t union_count = CountRows(g, "MATCH ->{1,5} | ->{3,7}");
  size_t alt_count = CountRows(g, "MATCH ->{1,5} |+| ->{3,7}");
  size_t overlap = CountRows(g, "MATCH ->{3,5}");
  EXPECT_EQ(alt_count, union_count + overlap);
}

TEST(UnionTest, UnionEquivalentToLabelDisjunction) {
  PropertyGraph g = BuildPaperGraph();
  // §6.5: the running query's union form equals the label-disjunction form.
  EXPECT_EQ(
      Rows(g,
           "MATCH (a)[-[:isLocatedIn]->(c:City) | "
           "-[:isLocatedIn]->(c:Country)]",
           "a, c"),
      Rows(g, "MATCH (a)-[:isLocatedIn]->(c:City|Country)", "a, c"));
}

TEST(UnionTest, AlternationDistinguishesEqualBindings) {
  PropertyGraph g = BuildPaperGraph();
  // c2 is both City and Country: identical reduced bindings from the two
  // branches survive separately under |+|.
  size_t union_rows = CountRows(
      g, "MATCH (a)[-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->"
         "(c:Country)]");
  size_t alt_rows = CountRows(
      g, "MATCH (a)[-[:isLocatedIn]->(c:City) |+| -[:isLocatedIn]->"
         "(c:Country)]");
  // Accounts a2,a4,a6 point to c2 (City&Country) — 3 duplicated rows.
  EXPECT_EQ(union_rows, 6u);
  EXPECT_EQ(alt_rows, 9u);
}

TEST(UnionTest, ThreeWayUnion) {
  PropertyGraph g = BuildPaperGraph();
  EXPECT_EQ(Rows(g, "MATCH (c:City) | (c:Country) | (c:Phone)", "c").size(),
            6u);
}

TEST(UnionTest, ConditionalVariablesAcrossBranches) {
  PropertyGraph g = BuildPaperGraph();
  // §4.6's legal union: x binds in both branches, y/z in one each.
  size_t n = CountRows(g, "MATCH [(x)->(y:City)] | [(x)->(z:Phone)]");
  // isLocatedIn edges into c2 (City): 3; hasPhone is undirected, not ->.
  // signInWithIP targets are IPs. So y-branch: li2,li4,li6 -> 3 rows;
  // z-branch: none (phones have only undirected edges).
  EXPECT_EQ(n, 3u);
}

TEST(UnionTest, UnionBranchesWithDifferentLengths) {
  PropertyGraph g = BuildPaperGraph();
  // One-edge branch vs two-edge branch.
  std::vector<std::string> rows = Rows(
      g,
      "MATCH (a WHERE a.owner='Scott')"
      "[-[:Transfer]->(b) | -[:Transfer]->()-[:Transfer]->(b)]",
      "b");
  EXPECT_EQ(rows, (std::vector<std::string>{"a2", "a3", "a5"}));
}

}  // namespace
}  // namespace gpml
