#ifndef GPML_OBS_CLOCK_H_
#define GPML_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace gpml {
namespace obs {

/// Monotonic timestamp in microseconds (steady_clock). All observability
/// timings — span durations, stage histograms, the slow-query threshold —
/// are taken from this clock, never from wall time, so they are immune to
/// NTP slews.
inline uint64_t MonotonicMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A started monotonic stopwatch. Two clock reads per measured region; cheap
/// enough to stay on unconditionally in the engine (the bench_obs gate holds
/// total instrumentation overhead under 2%).
class Stopwatch {
 public:
  Stopwatch() : start_us_(MonotonicMicros()) {}

  uint64_t ElapsedMicros() const { return MonotonicMicros() - start_us_; }
  double ElapsedMs() const {
    return static_cast<double>(ElapsedMicros()) / 1e3;
  }
  uint64_t start_us() const { return start_us_; }

 private:
  uint64_t start_us_;
};

}  // namespace obs
}  // namespace gpml

#endif  // GPML_OBS_CLOCK_H_
