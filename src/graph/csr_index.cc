#include "graph/csr_index.h"

#include <algorithm>

#include "graph/property_graph.h"

namespace gpml {

void CsrIndex::Build(const std::vector<std::vector<Adjacency>>& adjacency,
                     const std::vector<uint32_t>& edge_label_offsets,
                     const std::vector<Symbol>& edge_label_syms) {
  node_begin_.assign(adjacency.size() + 1, 0);
  buckets_.clear();
  entries_.clear();

  // Scratch: (label, record) pairs of one node, stable-sorted by label so
  // records inside a bucket keep the legacy adjacency order.
  std::vector<std::pair<Symbol, Adjacency>> scratch;
  for (size_t n = 0; n < adjacency.size(); ++n) {
    node_begin_[n] = static_cast<uint32_t>(buckets_.size());
    scratch.clear();
    for (const Adjacency& adj : adjacency[n]) {
      const uint32_t lo = edge_label_offsets[adj.edge];
      const uint32_t hi = edge_label_offsets[adj.edge + 1];
      for (uint32_t i = lo; i < hi; ++i) {
        scratch.emplace_back(edge_label_syms[i], adj);
      }
    }
    std::stable_sort(scratch.begin(), scratch.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    size_t i = 0;
    while (i < scratch.size()) {
      Bucket b;
      b.label = scratch[i].first;
      b.begin = static_cast<uint32_t>(entries_.size());
      while (i < scratch.size() && scratch[i].first == b.label) {
        entries_.push_back(scratch[i].second);
        ++i;
      }
      b.end = static_cast<uint32_t>(entries_.size());
      buckets_.push_back(b);
    }
  }
  node_begin_[adjacency.size()] = static_cast<uint32_t>(buckets_.size());
}

AdjSpan CsrIndex::Range(uint32_t node, Symbol label) const {
  const Bucket* lo = buckets_.data() + node_begin_[node];
  const Bucket* hi = buckets_.data() + node_begin_[node + 1];
  const Bucket* it = std::lower_bound(
      lo, hi, label,
      [](const Bucket& b, Symbol l) { return b.label < l; });
  if (it == hi || it->label != label) return {};
  return {entries_.data() + it->begin,
          static_cast<size_t>(it->end - it->begin)};
}

// ---------------------------------------------------------------------------
// CompiledLabelPred
// ---------------------------------------------------------------------------

namespace {

/// True when `e` is a pure conjunction / disjunction tree of plain names
/// (single names count as both); fills the resolved symbols.
bool FlattenNames(const LabelExpr& e, LabelExpr::Kind connective,
                  const SymbolTable& labels, std::vector<Symbol>* out) {
  if (e.kind == LabelExpr::Kind::kName) {
    out->push_back(labels.Find(e.name));
    return true;
  }
  if (e.kind != connective) return false;
  return FlattenNames(*e.left, connective, labels, out) &&
         FlattenNames(*e.right, connective, labels, out);
}

bool HasSymbol(const Symbol* syms, size_t count, Symbol s) {
  return std::binary_search(syms, syms + count, s);
}

}  // namespace

CompiledLabelPred CompiledLabelPred::Compile(const LabelExprPtr& expr,
                                             const SymbolTable& labels,
                                             bool use_bits) {
  CompiledLabelPred p;
  p.use_bits_ = use_bits;
  if (expr == nullptr) {
    p.kind_ = Kind::kAlwaysTrue;
    return p;
  }

  if (use_bits) {
    std::vector<Symbol> syms;
    if (FlattenNames(*expr, LabelExpr::Kind::kAnd, labels, &syms)) {
      for (Symbol s : syms) {
        if (s == kInvalidSymbol) {
          p.kind_ = Kind::kNever;  // A required name the graph never uses.
          return p;
        }
        p.mask_ |= uint64_t{1} << s;
      }
      p.kind_ = Kind::kAllOf;
      return p;
    }
    syms.clear();
    if (FlattenNames(*expr, LabelExpr::Kind::kOr, labels, &syms)) {
      for (Symbol s : syms) {
        if (s != kInvalidSymbol) p.mask_ |= uint64_t{1} << s;
      }
      p.kind_ = p.mask_ == 0 ? Kind::kNever : Kind::kAnyOf;
      return p;
    }
    if (expr->kind == LabelExpr::Kind::kWildcard) {
      p.kind_ = Kind::kAnyOf;
      p.mask_ = ~uint64_t{0};  // "Has at least one label": any bit set.
      return p;
    }
  }

  // General form: the expression tree in postfix order, evaluated with a
  // small boolean stack. Covers negation, mixed connectives, and graphs
  // whose label universe exceeds the 64-bit masks.
  p.kind_ = Kind::kGeneral;
  struct Walk {
    const SymbolTable& labels;
    std::vector<Op>* ops;
    void Visit(const LabelExpr& e) {
      switch (e.kind) {
        case LabelExpr::Kind::kName:
          ops->push_back({Op::Code::kTestName, labels.Find(e.name)});
          break;
        case LabelExpr::Kind::kWildcard:
          ops->push_back({Op::Code::kTestAny, kInvalidSymbol});
          break;
        case LabelExpr::Kind::kNot:
          Visit(*e.left);
          ops->push_back({Op::Code::kNot, kInvalidSymbol});
          break;
        case LabelExpr::Kind::kAnd:
        case LabelExpr::Kind::kOr:
          Visit(*e.left);
          Visit(*e.right);
          ops->push_back({e.kind == LabelExpr::Kind::kAnd ? Op::Code::kAnd
                                                          : Op::Code::kOr,
                          kInvalidSymbol});
          break;
      }
    }
  };
  Walk{labels, &p.ops_}.Visit(*expr);
  return p;
}

bool CompiledLabelPred::Matches(uint64_t bits, const Symbol* syms,
                                size_t count) const {
  switch (kind_) {
    case Kind::kAlwaysTrue:
      return true;
    case Kind::kNever:
      return false;
    case Kind::kAllOf:
      return (bits & mask_) == mask_;
    case Kind::kAnyOf:
      return (bits & mask_) != 0;
    case Kind::kGeneral:
      break;
  }
  // Postfix evaluation. The stack depth is bounded by the op count; label
  // expressions are tiny in practice, so a fixed local buffer with a
  // heap fallback keeps the common case allocation-free.
  bool local[64];
  std::vector<bool> heap;
  const bool use_heap = ops_.size() > 64;
  if (use_heap) heap.resize(ops_.size());
  size_t top = 0;
  auto push = [&](bool v) {
    if (use_heap) {
      heap[top++] = v;
    } else {
      local[top++] = v;
    }
  };
  auto pop = [&]() { return use_heap ? bool(heap[--top]) : local[--top]; };
  for (const Op& op : ops_) {
    switch (op.code) {
      case Op::Code::kTestName:
        if (use_bits_) {
          push(op.sym != kInvalidSymbol &&
               (bits & (uint64_t{1} << op.sym)) != 0);
        } else {
          push(op.sym != kInvalidSymbol && HasSymbol(syms, count, op.sym));
        }
        break;
      case Op::Code::kTestAny:
        push(count != 0);
        break;
      case Op::Code::kNot:
        push(!pop());
        break;
      case Op::Code::kAnd: {
        bool b = pop(), a = pop();
        push(a && b);
        break;
      }
      case Op::Code::kOr: {
        bool b = pop(), a = pop();
        push(a || b);
        break;
      }
    }
  }
  return pop();
}

// ---------------------------------------------------------------------------
// PropertySeedIndex
// ---------------------------------------------------------------------------

void PropertySeedIndex::Add(Symbol label, Symbol key, const Value& value,
                            uint32_t node) {
  index_[Key{label, key, value}].push_back(node);
}

const std::vector<uint32_t>& PropertySeedIndex::Lookup(
    Symbol label, Symbol key, const Value& value) const {
  static const std::vector<uint32_t> kEmpty;
  auto it = index_.find(Key{label, key, value});
  return it == index_.end() ? kEmpty : it->second;
}

}  // namespace gpml
