#include "eval/reference_eval.h"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>

#include "ast/print.h"
#include "eval/expr_eval.h"
#include "eval/restrictor.h"
#include "eval/selector.h"

namespace gpml {

std::string RigidPattern::ToString(const VarTable& vars) const {
  std::string out;
  for (const RigidItem& it : items) {
    if (it.is_node) {
      NodePattern np = *it.node;
      np.var = vars.name(it.var) + it.suffix;
      out += Print(np);
    } else {
      EdgePattern ep = *it.edge;
      ep.var = vars.name(it.var) + it.suffix;
      out += Print(ep);
    }
  }
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Expansion (§6.3)
// ---------------------------------------------------------------------------

class Expander {
 public:
  Expander(const VarTable& vars, uint64_t cap, size_t max_patterns)
      : vars_(vars), cap_(cap), max_patterns_(max_patterns) {}

  Result<std::vector<RigidPattern>> Expand(const PathPattern& p) {
    return ExpandPath(p, "");
  }

 private:
  Status Guard(size_t n) {
    if (n > max_patterns_) {
      return Status::ResourceExhausted(
          "rigid-pattern expansion exceeded max_rigid_patterns");
    }
    return Status::OK();
  }

  /// Concatenation of two rigid fragments: shifts the right fragment's
  /// where/scope ranges.
  static RigidPattern Concat(const RigidPattern& a, const RigidPattern& b) {
    RigidPattern out = a;
    size_t shift = a.items.size();
    out.items.insert(out.items.end(), b.items.begin(), b.items.end());
    for (RigidWhere w : b.wheres) {
      w.from += shift;
      w.to += shift;
      out.wheres.push_back(std::move(w));
    }
    for (RigidScope s : b.scopes) {
      s.from += shift;
      s.to += shift;
      out.scopes.push_back(s);
    }
    out.tags.insert(out.tags.end(), b.tags.begin(), b.tags.end());
    return out;
  }

  Result<std::vector<RigidPattern>> ExpandPath(const PathPattern& p,
                                               const std::string& suffix) {
    switch (p.kind) {
      case PathPattern::Kind::kConcat: {
        std::vector<RigidPattern> acc = {RigidPattern{}};
        for (const PathElement& e : p.elements) {
          GPML_ASSIGN_OR_RETURN(std::vector<RigidPattern> alts,
                                ExpandElement(e, suffix));
          std::vector<RigidPattern> next;
          next.reserve(acc.size() * alts.size());
          for (const RigidPattern& a : acc) {
            for (const RigidPattern& b : alts) {
              next.push_back(Concat(a, b));
            }
          }
          GPML_RETURN_IF_ERROR(Guard(next.size()));
          acc = std::move(next);
        }
        return acc;
      }
      case PathPattern::Kind::kUnion:
      case PathPattern::Kind::kAlternation: {
        std::vector<RigidPattern> out;
        for (size_t i = 0; i < p.alternatives.size(); ++i) {
          GPML_ASSIGN_OR_RETURN(std::vector<RigidPattern> alts,
                                ExpandPath(*p.alternatives[i], suffix));
          for (RigidPattern& rp : alts) {
            if (p.kind == PathPattern::Kind::kAlternation) {
              rp.tags.insert(rp.tags.begin(), next_tag_base_ +
                                                  static_cast<int32_t>(i));
            }
            out.push_back(std::move(rp));
          }
          GPML_RETURN_IF_ERROR(Guard(out.size()));
        }
        if (p.kind == PathPattern::Kind::kAlternation) {
          next_tag_base_ += static_cast<int32_t>(p.alternatives.size());
        }
        return out;
      }
    }
    return Status::Internal("unknown path pattern kind");
  }

  Result<std::vector<RigidPattern>> ExpandElement(const PathElement& e,
                                                  const std::string& suffix) {
    switch (e.kind) {
      case PathElement::Kind::kNode: {
        RigidPattern rp;
        RigidItem it;
        it.is_node = true;
        it.node = &e.node;
        it.var = vars_.Find(e.node.var);
        it.suffix = suffix;
        rp.items.push_back(std::move(it));
        return std::vector<RigidPattern>{std::move(rp)};
      }
      case PathElement::Kind::kEdge: {
        RigidPattern rp;
        RigidItem it;
        it.is_node = false;
        it.edge = &e.edge;
        it.var = vars_.Find(e.edge.var);
        it.suffix = suffix;
        rp.items.push_back(std::move(it));
        return std::vector<RigidPattern>{std::move(rp)};
      }
      case PathElement::Kind::kParen: {
        GPML_ASSIGN_OR_RETURN(std::vector<RigidPattern> subs,
                              ExpandPath(*e.sub, suffix));
        for (RigidPattern& rp : subs) {
          AttachSegment(e, suffix, &rp);
        }
        return subs;
      }
      case PathElement::Kind::kOptional: {
        GPML_ASSIGN_OR_RETURN(std::vector<RigidPattern> subs,
                              ExpandPath(*e.sub, suffix));
        for (RigidPattern& rp : subs) {
          AttachSegment(e, suffix, &rp);
        }
        subs.push_back(RigidPattern{});  // The skipped alternative.
        return subs;
      }
      case PathElement::Kind::kQuantified: {
        uint64_t hi = e.max.has_value() ? *e.max : cap_;
        std::vector<RigidPattern> out;
        // All iteration counts n in [min, hi]; per-iteration alternatives
        // multiply (each iteration may pick a different branch).
        for (uint64_t n = e.min; n <= hi; ++n) {
          std::vector<RigidPattern> acc = {RigidPattern{}};
          for (uint64_t i = 1; i <= n; ++i) {
            std::string iter_suffix = suffix + "^" + std::to_string(i);
            GPML_ASSIGN_OR_RETURN(std::vector<RigidPattern> body,
                                  ExpandPath(*e.sub, iter_suffix));
            for (RigidPattern& rp : body) {
              RigidPattern seg = rp;
              // Per-iteration WHERE and restrictor wrap each copy.
              AttachSegment(e, iter_suffix, &seg);
              rp = std::move(seg);
            }
            std::vector<RigidPattern> next;
            next.reserve(acc.size() * body.size());
            for (const RigidPattern& a : acc) {
              for (const RigidPattern& b : body) {
                next.push_back(Concat(a, b));
              }
            }
            GPML_RETURN_IF_ERROR(Guard(next.size() + out.size()));
            acc = std::move(next);
          }
          for (RigidPattern& rp : acc) out.push_back(std::move(rp));
          GPML_RETURN_IF_ERROR(Guard(out.size()));
        }
        return out;
      }
    }
    return Status::Internal("unknown path element kind");
  }

  static void AttachSegment(const PathElement& e, const std::string& suffix,
                            RigidPattern* rp) {
    if (e.where != nullptr) {
      RigidWhere w;
      w.expr = e.where;
      w.from = 0;
      w.to = rp->items.size();
      w.suffix = suffix;
      rp->wheres.push_back(std::move(w));
    }
    if (e.restrictor != Restrictor::kNone) {
      RigidScope s;
      s.restrictor = e.restrictor;
      s.from = 0;
      s.to = rp->items.size();
      rp->scopes.push_back(s);
    }
  }

  const VarTable& vars_;
  uint64_t cap_;
  size_t max_patterns_;
  int32_t next_tag_base_ = 1;
};

// ---------------------------------------------------------------------------
// Rigid pattern matching (§6.4)
// ---------------------------------------------------------------------------

/// Scope resolving singleton references by annotated variable with
/// longest-suffix-first fallback: a reference to b inside iteration ^3 sees
/// b^3, while a reference to an outer a sees a (empty suffix).
class RigidScopeEval : public EvalScope {
 public:
  RigidScopeEval(const std::map<std::string, ElementRef>& env,
                 const VarTable& vars, std::string suffix,
                 const std::vector<std::pair<int, ElementRef>>* frame)
      : env_(env), vars_(vars), suffix_(std::move(suffix)), frame_(frame) {}

  std::optional<ElementRef> LookupSingleton(int var) const override {
    std::string suffix = suffix_;
    const std::string& base = vars_.name(var);
    while (true) {
      auto it = env_.find(base + suffix);
      if (it != env_.end()) return it->second;
      if (suffix.empty()) return std::nullopt;
      size_t pos = suffix.rfind('^');
      suffix = pos == std::string::npos ? "" : suffix.substr(0, pos);
    }
  }

  std::vector<ElementRef> CollectGroup(int var) const override {
    std::vector<ElementRef> out;
    if (frame_ == nullptr) return out;
    for (const auto& [v, el] : *frame_) {
      if (v == var) out.push_back(el);
    }
    return out;
  }

 private:
  const std::map<std::string, ElementRef>& env_;
  const VarTable& vars_;
  std::string suffix_;
  const std::vector<std::pair<int, ElementRef>>* frame_;
};

class RigidMatcher {
 public:
  RigidMatcher(const PropertyGraph& g, const VarTable& vars,
               const RigidPattern& rp, size_t max_matches,
               std::vector<PathBinding>* out)
      : g_(g), vars_(vars), rp_(rp), max_matches_(max_matches), out_(out) {}

  Status Run() {
    if (rp_.items.empty()) return Status::OK();
    assignments_.assign(rp_.items.size(), ElementRef());
    traversals_.assign(rp_.items.size(), Traversal::kForward);
    for (NodeId s = 0; s < g_.num_nodes(); ++s) {
      GPML_RETURN_IF_ERROR(Step(0, s));
    }
    return Status::OK();
  }

 private:
  std::string AnnotatedName(const RigidItem& it) const {
    return vars_.name(it.var) + it.suffix;
  }

  Status Step(size_t index, NodeId current) {
    // Segment predicates / restrictors whose range ends here.
    for (const RigidWhere& w : rp_.wheres) {
      if (w.to != index) continue;
      std::vector<std::pair<int, ElementRef>> frame;
      for (size_t i = w.from; i < w.to; ++i) {
        frame.push_back({rp_.items[i].var, assignments_[i]});
      }
      RigidScopeEval scope(env_, vars_, w.suffix, &frame);
      GPML_ASSIGN_OR_RETURN(TriBool ok,
                            EvalPredicate(*w.expr, g_, vars_, scope));
      if (ok != TriBool::kTrue) return Status::OK();
    }
    for (const RigidScope& s : rp_.scopes) {
      if (s.to != index || s.restrictor == Restrictor::kNone) continue;
      if (!SatisfiesRestrictor(SliceToPath(s.from, s.to), s.restrictor)) {
        return Status::OK();
      }
    }

    if (index == rp_.items.size()) return Accept();

    const RigidItem& it = rp_.items[index];
    if (it.is_node) {
      const NodeData& nd = g_.node(current);
      if (it.node->labels != nullptr && !it.node->labels->Matches(nd.labels)) {
        return Status::OK();
      }
      ElementRef ref = ElementRef::Node(current);
      std::string key = AnnotatedName(it);
      auto prev = env_.find(key);
      bool inserted = false;
      if (prev != env_.end()) {
        if (!(prev->second == ref)) return Status::OK();
      } else if (!vars_.info(it.var).anonymous) {
        env_.emplace(key, ref);
        inserted = true;
      }
      bool pass = true;
      if (it.node->where != nullptr) {
        RigidScopeEval scope(env_, vars_, it.suffix, nullptr);
        // The node's own variable might be anonymous and absent from env;
        // temporarily expose it.
        auto self = env_.emplace(key, ref);
        Result<TriBool> ok = EvalPredicate(*it.node->where, g_, vars_, scope);
        if (self.second) env_.erase(key);
        if (!ok.ok()) return ok.status();
        pass = *ok == TriBool::kTrue;
      }
      Status st = Status::OK();
      if (pass) {
        assignments_[index] = ref;
        st = Step(index + 1, current);
      }
      if (inserted) env_.erase(key);
      return st;
    }

    // Edge item: iterate admissible adjacencies.
    for (const Adjacency& adj : g_.adjacencies(current)) {
      if (!Admits(it.edge->orientation, adj.traversal)) continue;
      const EdgeData& ed = g_.edge(adj.edge);
      if (it.edge->labels != nullptr && !it.edge->labels->Matches(ed.labels)) {
        continue;
      }
      ElementRef ref = ElementRef::Edge(adj.edge);
      std::string key = AnnotatedName(it);
      auto prev = env_.find(key);
      if (prev != env_.end() && !(prev->second == ref)) continue;
      bool inserted = false;
      if (prev == env_.end() && !vars_.info(it.var).anonymous) {
        env_.emplace(key, ref);
        inserted = true;
      }
      bool pass = true;
      if (it.edge->where != nullptr) {
        auto self = env_.emplace(key, ref);
        RigidScopeEval scope(env_, vars_, it.suffix, nullptr);
        Result<TriBool> ok = EvalPredicate(*it.edge->where, g_, vars_, scope);
        if (self.second) env_.erase(key);
        if (!ok.ok()) return ok.status();
        pass = *ok == TriBool::kTrue;
      }
      if (pass) {
        assignments_[index] = ref;
        traversals_[index] = adj.traversal;
        GPML_RETURN_IF_ERROR(Step(index + 1, adj.neighbor));
      }
      if (inserted) env_.erase(key);
    }
    return Status::OK();
  }

  static bool Admits(EdgeOrientation o, Traversal t) {
    switch (o) {
      case EdgeOrientation::kLeft: return t == Traversal::kBackward;
      case EdgeOrientation::kUndirected: return t == Traversal::kUndirected;
      case EdgeOrientation::kRight: return t == Traversal::kForward;
      case EdgeOrientation::kLeftOrUndirected:
        return t != Traversal::kForward;
      case EdgeOrientation::kUndirectedOrRight:
        return t != Traversal::kBackward;
      case EdgeOrientation::kLeftOrRight: return t != Traversal::kUndirected;
      case EdgeOrientation::kAny: return true;
    }
    return false;
  }

  /// The path spanned by items [from, to) — adjacent node items collapse.
  Path SliceToPath(size_t from, size_t to) const {
    Path p;
    bool started = false;
    for (size_t i = from; i < to && i < assignments_.size(); ++i) {
      const ElementRef& ref = assignments_[i];
      if (ref.id == kInvalidId) break;
      if (ref.is_node()) {
        if (!started) {
          p = Path(ref.id);
          started = true;
        }
      } else {
        NodeId next = kInvalidId;
        for (size_t j = i + 1; j < to && j < assignments_.size(); ++j) {
          if (assignments_[j].is_node()) {
            next = assignments_[j].id;
            break;
          }
        }
        p.Append(ref.id, traversals_[i], next);
      }
    }
    return p;
  }

  Status Accept() {
    // Build a chain with base variables and reuse the shared reduction.
    BindingChain chain;
    for (size_t i = 0; i < rp_.items.size(); ++i) {
      chain = Extend(chain, {rp_.items[i].var, assignments_[i]},
                     traversals_[i]);
    }
    out_->push_back(ReduceChain(chain, vars_, rp_.tags));
    if (out_->size() > max_matches_) {
      return Status::ResourceExhausted(
          "reference evaluation exceeded max_matches");
    }
    return Status::OK();
  }

  const PropertyGraph& g_;
  const VarTable& vars_;
  const RigidPattern& rp_;
  size_t max_matches_;
  std::vector<PathBinding>* out_;

  std::vector<ElementRef> assignments_;
  std::vector<Traversal> traversals_;
  std::map<std::string, ElementRef> env_;
};

uint64_t AutoCap(const PathPatternDecl& decl, const PropertyGraph& g,
                 const ReferenceOptions& options) {
  if (options.expansion_cap != 0) return options.expansion_cap;
  // Walk for any restrictor (declaration-level or parenthesized).
  // TRAIL bounds path length by |E|; ACYCLIC/SIMPLE by |N|.
  if (decl.restrictor == Restrictor::kTrail) return g.num_edges() + 1;
  if (decl.restrictor != Restrictor::kNone) return g.num_nodes() + 1;
  return 2 * g.num_nodes() + 2;
}

}  // namespace

Result<std::vector<RigidPattern>> ExpandPattern(
    const PathPatternDecl& decl, const VarTable& vars, const PropertyGraph& g,
    const ReferenceOptions& options) {
  Expander ex(vars, AutoCap(decl, g, options), options.max_rigid_patterns);
  GPML_ASSIGN_OR_RETURN(std::vector<RigidPattern> rigids,
                        ex.Expand(*decl.pattern));
  // The declaration-level restrictor spans every rigid pattern entirely.
  if (decl.restrictor != Restrictor::kNone) {
    for (RigidPattern& rp : rigids) {
      RigidScope s;
      s.restrictor = decl.restrictor;
      s.from = 0;
      s.to = rp.items.size();
      rp.scopes.push_back(s);
    }
  }
  return rigids;
}

Result<MatchSet> RunReference(const PropertyGraph& g,
                              const PathPatternDecl& decl,
                              const VarTable& vars,
                              const ReferenceOptions& options) {
  GPML_ASSIGN_OR_RETURN(std::vector<RigidPattern> rigids,
                        ExpandPattern(decl, vars, g, options));

  std::vector<PathBinding> all;
  for (const RigidPattern& rp : rigids) {
    RigidMatcher m(g, vars, rp, options.max_matches, &all);
    GPML_RETURN_IF_ERROR(m.Run());
  }

  // Reduction happened per match; now deduplicate (§6.5) and order by
  // length for the selector.
  std::stable_sort(all.begin(), all.end(),
                   [](const PathBinding& a, const PathBinding& b) {
                     return a.path.Length() < b.path.Length();
                   });
  std::vector<PathBinding> dedup;
  std::unordered_map<size_t, std::vector<size_t>> buckets;
  for (PathBinding& pb : all) {
    auto& bucket = buckets[pb.ReducedHash()];
    bool dup = false;
    for (size_t idx : bucket) {
      if (dedup[idx].SameReduced(pb)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      bucket.push_back(dedup.size());
      dedup.push_back(std::move(pb));
    }
  }

  ApplySelector(decl.selector, &dedup);
  MatchSet out;
  out.bindings = std::move(dedup);
  return out;
}

}  // namespace gpml
