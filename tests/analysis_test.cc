// Static query analyzer (docs/analysis.md): typed multi-diagnostic pass at
// prepare time. Type errors (GPML-E011/E012) fail Prepare; satisfiability
// findings (always-false WHERE, contradictory equalities, empty quantifiers,
// label contradictions) compile to the cached empty plan that executes with
// 0 seeds and 0 matcher steps; schema lints flag unknown labels/properties
// and cartesian products; always-true conjuncts are dropped from the
// compiled postfilter; parameter signatures tighten from ordered literal
// comparisons; diagnostics ride on the plan into the EXPLAIN `warnings:`
// section and roundtrip through ParseExplain; and the Lint() APIs (Engine,
// Session, GRAPH_TABLE) run the full pipeline without failing, over
// malformed input too, with every span inside the linted text.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "catalog/catalog.h"
#include "eval/engine.h"
#include "gql/session.h"
#include "graph/sample_graph.h"
#include "parser/parser.h"
#include "pgq/graph_table.h"
#include "planner/explain.h"
#include "semantics/analyze.h"
#include "semantics/normalize.h"
#include "tests/test_util.h"

namespace gpml {
namespace {

using testing_util::Rows;

std::vector<std::string> Codes(const analysis::DiagnosticList& diags) {
  std::vector<std::string> codes;
  codes.reserve(diags.size());
  for (const analysis::Diagnostic& d : diags) codes.push_back(d.code);
  return codes;
}

bool HasCode(const analysis::DiagnosticList& diags, const char* code) {
  for (const analysis::Diagnostic& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

class AnalysisTest : public ::testing::Test {
 protected:
  PropertyGraph g_ = BuildPaperGraph();
};

// ---------------------------------------------------------------------------
// Type checking: hard errors fail Prepare
// ---------------------------------------------------------------------------

TEST_F(AnalysisTest, NonBooleanPredicateFailsPrepare) {
  Engine engine(g_);
  Result<PreparedQuery> q = engine.Prepare("MATCH (x) WHERE 42");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("GPML-E012"), std::string::npos)
      << q.status();
}

TEST_F(AnalysisTest, ElementAsPredicateFailsPrepare) {
  Engine engine(g_);
  Result<PreparedQuery> q = engine.Prepare("MATCH (x)-[e]->(y) WHERE x");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("GPML-E012"), std::string::npos)
      << q.status();
}

TEST_F(AnalysisTest, StringOperandInArithmeticFailsPrepare) {
  Engine engine(g_);
  Result<PreparedQuery> q =
      engine.Prepare("MATCH (x) WHERE x.owner = 1 + 'abc'");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("GPML-E011"), std::string::npos)
      << q.status();
}

TEST_F(AnalysisTest, TypeErrorQueriesPrepareWithAnalysisOff) {
  // The differential contract: with the analyzer off the historical
  // pipeline is reproduced exactly, so these only fail at evaluation time.
  EngineOptions opts;
  opts.use_analysis = false;
  Engine engine(g_, opts);
  EXPECT_TRUE(engine.Prepare("MATCH (x) WHERE 42").ok());
  EXPECT_TRUE(engine.Prepare("MATCH (x) WHERE x.owner = 1 + 'abc'").ok());
}

TEST_F(AnalysisTest, IncomparableLiteralsWarnButPrepare) {
  // 1 < 'a' is UNKNOWN at runtime, not an error — warning severity, and
  // (as the whole WHERE) provably never TRUE.
  Engine engine(g_);
  Result<PreparedQuery> q = engine.Prepare("MATCH (x) WHERE 1 < 'a'");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(HasCode(q->diagnostics(), analysis::kCodeIncomparable))
      << q->diagnostics().ToString();
  EXPECT_TRUE(HasCode(q->diagnostics(), analysis::kCodeAlwaysFalse));
  EXPECT_TRUE(q->always_empty());
}

// ---------------------------------------------------------------------------
// Parameter signature tightening
// ---------------------------------------------------------------------------

TEST_F(AnalysisTest, OrderedNumericComparisonTightensParam) {
  Engine engine(g_);
  Result<PreparedQuery> q = engine.Prepare("MATCH (x) WHERE $p > 5");
  ASSERT_TRUE(q.ok()) << q.status();
  Result<MatchOutput> out = q->Execute({{"p", Value::String("oops")}});
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("must be numeric"),
            std::string::npos)
      << out.status();
  EXPECT_TRUE(q->Execute({{"p", Value::Int(7)}}).ok());
  EXPECT_TRUE(q->Execute({{"p", Value::Null()}}).ok());  // NULL always binds.
}

TEST_F(AnalysisTest, OrderedStringComparisonTightensParam) {
  Engine engine(g_);
  Result<PreparedQuery> q =
      engine.Prepare("MATCH (x:Account) WHERE x.owner >= $low AND $low < 'm'");
  ASSERT_TRUE(q.ok()) << q.status();
  Result<MatchOutput> out = q->Execute({{"low", Value::Int(3)}});
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("must be STRING"), std::string::npos)
      << out.status();
  EXPECT_TRUE(q->Execute({{"low", Value::String("c")}}).ok());
  EXPECT_TRUE(q->Execute({{"low", Value::Null()}}).ok());
}

TEST_F(AnalysisTest, EqualityDoesNotTightenParam) {
  // Equality comparisons stay polymorphic: any type may bind.
  Engine engine(g_);
  Result<PreparedQuery> q =
      engine.Prepare("MATCH (x:Account) WHERE x.owner = $who");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->Execute({{"who", Value::Int(5)}}).ok());
  EXPECT_TRUE(q->Execute({{"who", Value::String("Scott")}}).ok());
}

TEST_F(AnalysisTest, ContradictoryParamUsesWarn) {
  Engine engine(g_);
  Result<PreparedQuery> q =
      engine.Prepare("MATCH (x) WHERE $p AND $p < 5");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(HasCode(q->diagnostics(), analysis::kCodeParamContradiction))
      << q->diagnostics().ToString();
  // NULL satisfies every constraint (3VL) — the query stays executable.
  EXPECT_TRUE(q->Execute({{"p", Value::Null()}}).ok());
}

// ---------------------------------------------------------------------------
// Satisfiability: always-false patterns compile to the cached empty plan
// ---------------------------------------------------------------------------

TEST_F(AnalysisTest, AlwaysFalseWherePreparesAndExecutesEmpty) {
  EngineMetrics metrics;
  EngineOptions opts;
  opts.metrics = &metrics;
  Engine engine(g_, opts);
  Result<PreparedQuery> q =
      engine.Prepare("MATCH (x:Account) WHERE 1 = 2");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(HasCode(q->diagnostics(), analysis::kCodeAlwaysFalse));
  EXPECT_TRUE(HasCode(q->diagnostics(), analysis::kCodeEmptyPlan));
  EXPECT_TRUE(q->always_empty());

  Result<MatchOutput> out = q->Execute();
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->rows.size(), 0u);
  // The empty plan never touches the graph.
  EXPECT_EQ(metrics.seeded_nodes, 0u);
  EXPECT_EQ(metrics.matcher_steps, 0u);
  EXPECT_EQ(metrics.rows, 0u);
}

TEST_F(AnalysisTest, ContradictoryEqualitiesExecuteEmpty) {
  // The headline acceptance query: x.a = 1 AND x.a = 2.
  EngineMetrics metrics;
  EngineOptions opts;
  opts.metrics = &metrics;
  Engine engine(g_, opts);
  Result<PreparedQuery> q = engine.Prepare(
      "MATCH (x:Account) WHERE x.owner = 'Scott' AND x.owner = 'Mike'");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(HasCode(q->diagnostics(), analysis::kCodeContradictoryEq))
      << q->diagnostics().ToString();
  EXPECT_TRUE(q->always_empty());

  Result<MatchOutput> out = q->Execute();
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->rows.size(), 0u);
  EXPECT_EQ(metrics.seeded_nodes, 0u);
  EXPECT_EQ(metrics.matcher_steps, 0u);
}

TEST_F(AnalysisTest, AlwaysFalseRowsMatchUnanalyzedPath) {
  // Differential: the pruned execution is row-identical to the full one.
  const std::string q =
      "MATCH (x:Account) WHERE x.owner = 'Scott' AND x.owner = 'Mike'";
  EngineOptions off;
  off.use_analysis = false;
  EXPECT_EQ(Rows(g_, q, "x"), Rows(g_, q, "x", off));
  EXPECT_TRUE(Rows(g_, q, "x").empty());
}

TEST_F(AnalysisTest, NullEqualityIsAlwaysUnknown) {
  Engine engine(g_);
  Result<PreparedQuery> q =
      engine.Prepare("MATCH (x:Account) WHERE x.owner = NULL");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(HasCode(q->diagnostics(), analysis::kCodeAlwaysFalse))
      << q->diagnostics().ToString();
  EXPECT_TRUE(q->always_empty());
}

TEST_F(AnalysisTest, AlwaysEmptyPlanIsCachedWithDiagnostics) {
  Engine engine(g_);
  const std::string q = "MATCH (x:Account) WHERE 1 = 2";
  Result<PreparedQuery> first = engine.Prepare(q);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->from_cache());
  Result<PreparedQuery> second = engine.Prepare(q);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->from_cache());
  EXPECT_TRUE(second->always_empty());
  EXPECT_TRUE(HasCode(second->diagnostics(), analysis::kCodeAlwaysFalse));
}

TEST_F(AnalysisTest, AlwaysEmptyCursorStreamsNothing) {
  Engine engine(g_);
  Result<PreparedQuery> q =
      engine.Prepare("MATCH (x:Account) WHERE 1 = 2");
  ASSERT_TRUE(q.ok()) << q.status();
  Result<Cursor> cursor = q->Open();
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  Result<MatchOutput> out = cursor->Drain();
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->rows.size(), 0u);
}

TEST_F(AnalysisTest, OptionalSiteFalsehoodDoesNotEmptyPattern) {
  // The contradiction sits under `?` — skippable, so the pattern still
  // matches (with the optional part absent). Warned, not pruned.
  Engine engine(g_);
  Result<PreparedQuery> q = engine.Prepare(
      "MATCH (x:Account)[(a)-[e:Transfer WHERE 1 = 2]->(b)]?(y)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(HasCode(q->diagnostics(), analysis::kCodeAlwaysFalse));
  EXPECT_FALSE(q->always_empty());
  Result<MatchOutput> out = q->Execute();
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_GT(out->rows.size(), 0u);
}

// ---------------------------------------------------------------------------
// Always-true conjuncts are dropped from the compiled postfilter
// ---------------------------------------------------------------------------

TEST_F(AnalysisTest, AlwaysTrueConjunctIsDroppedAndWarned) {
  Engine engine(g_);
  Result<PreparedQuery> q = engine.Prepare(
      "MATCH (x:Account) WHERE 1 = 1 AND x.owner = 'Scott'");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(HasCode(q->diagnostics(), analysis::kCodeAlwaysTrue))
      << q->diagnostics().ToString();
  // Rows are unchanged by the rewrite — against both the plain filter and
  // the unanalyzed pipeline.
  const std::string with_true =
      "MATCH (x:Account) WHERE 1 = 1 AND x.owner = 'Scott'";
  EngineOptions off;
  off.use_analysis = false;
  EXPECT_EQ(Rows(g_, with_true, "x"),
            Rows(g_, "MATCH (x:Account) WHERE x.owner = 'Scott'", "x"));
  EXPECT_EQ(Rows(g_, with_true, "x"), Rows(g_, with_true, "x", off));
}

TEST_F(AnalysisTest, WhollyTrueWhereIsDropped) {
  Engine engine(g_);
  Result<PreparedQuery> q = engine.Prepare("MATCH (x:Account) WHERE TRUE");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(HasCode(q->diagnostics(), analysis::kCodeAlwaysTrue));
  EXPECT_EQ(Rows(g_, "MATCH (x:Account) WHERE TRUE", "x"),
            Rows(g_, "MATCH (x:Account)", "x"));
}

TEST_F(AnalysisTest, ParamBearingTrueConjunctIsKept) {
  // `TRUE OR $p` folds TRUE but dropping it would shrink the signature —
  // the unanalyzed pipeline rejects an unbound $p, so must this one.
  Engine engine(g_);
  Result<PreparedQuery> q =
      engine.Prepare("MATCH (x:Account) WHERE TRUE OR $p");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_FALSE(q->Execute().ok());  // $p unbound.
  Result<MatchOutput> out = q->Execute({{"p", Value::Bool(false)}});
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->rows.size(), 6u);
}

// ---------------------------------------------------------------------------
// Quantifier and label contradictions
// ---------------------------------------------------------------------------

TEST_F(AnalysisTest, EmptyQuantifierRangeWarnsOnAstBuiltPattern) {
  // The parser rejects `{3,2}` outright; a programmatically built pattern
  // reaches the analyzer, which proves the site empty.
  EdgePattern edge;
  edge.orientation = EdgeOrientation::kRight;
  PathPatternPtr hop = PathPattern::Concat({PathElement::Edge(edge)});
  NodePattern a;
  a.var = "a";
  NodePattern b;
  b.var = "b";
  GraphPattern pattern;
  pattern.paths.push_back(PathPatternDecl{
      Selector{}, Restrictor::kNone, "",
      PathPattern::Concat(
          {PathElement::Node(a),
           PathElement::Quantified(hop, /*min=*/3, /*max=*/2,
                                   Restrictor::kNone, nullptr,
                                   /*bare_edge=*/true),
           PathElement::Node(b)})});

  Engine engine(g_);
  Result<PreparedQuery> q = engine.Prepare(pattern);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(HasCode(q->diagnostics(), analysis::kCodeQuantifierEmpty))
      << q->diagnostics().ToString();
  EXPECT_TRUE(q->always_empty());
  Result<MatchOutput> out = q->Execute();
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->rows.size(), 0u);
}

TEST_F(AnalysisTest, QuantifierBoundsStillRejectedByParser) {
  Engine engine(g_);
  analysis::DiagnosticList diags =
      engine.Lint("MATCH (a)-[:Transfer]->{3,2}(b)");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags.items()[0].code, analysis::kCodeSyntax);
}

TEST_F(AnalysisTest, ContradictoryLabelConjunctionEmptiesPattern) {
  EngineMetrics metrics;
  EngineOptions opts;
  opts.metrics = &metrics;
  Engine engine(g_, opts);
  Result<PreparedQuery> q = engine.Prepare("MATCH (x:Account&!Account)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(HasCode(q->diagnostics(), analysis::kCodeLabelContradiction))
      << q->diagnostics().ToString();
  EXPECT_TRUE(q->always_empty());
  Result<MatchOutput> out = q->Execute();
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->rows.size(), 0u);
  EXPECT_EQ(metrics.seeded_nodes, 0u);
  EXPECT_EQ(metrics.matcher_steps, 0u);
}

TEST_F(AnalysisTest, LabelNameWithNegatedWildcardContradicts) {
  // `Account & !%` requires a name on an element required label-less.
  Engine engine(g_);
  Result<PreparedQuery> q = engine.Prepare("MATCH (x:Account&!%)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(HasCode(q->diagnostics(), analysis::kCodeLabelContradiction));
  EXPECT_TRUE(q->always_empty());
}

TEST_F(AnalysisTest, LabelDisjunctionIsNotAContradiction) {
  Engine engine(g_);
  Result<PreparedQuery> q = engine.Prepare("MATCH (x:Account|!Account)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_FALSE(HasCode(q->diagnostics(), analysis::kCodeLabelContradiction))
      << q->diagnostics().ToString();
  EXPECT_FALSE(q->always_empty());
}

// ---------------------------------------------------------------------------
// Schema lints (warnings only — the queries still run)
// ---------------------------------------------------------------------------

TEST_F(AnalysisTest, UnknownLabelWarns) {
  Engine engine(g_);
  Result<PreparedQuery> q = engine.Prepare("MATCH (x:Acount)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(HasCode(q->diagnostics(), analysis::kCodeUnknownLabel))
      << q->diagnostics().ToString();
  EXPECT_FALSE(q->always_empty());
}

TEST_F(AnalysisTest, UnknownPropertyWarns) {
  Engine engine(g_);
  Result<PreparedQuery> q =
      engine.Prepare("MATCH (x:Account) WHERE x.owners = 'Scott'");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(HasCode(q->diagnostics(), analysis::kCodeUnknownProperty))
      << q->diagnostics().ToString();
}

TEST_F(AnalysisTest, KnownSchemaNamesDoNotWarn) {
  Engine engine(g_);
  Result<PreparedQuery> q = engine.Prepare(
      "MATCH (x:Account)-[t:Transfer]->(y:Account) WHERE t.amount > 5M");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->diagnostics().empty()) << q->diagnostics().ToString();
}

TEST_F(AnalysisTest, DisconnectedDeclarationsWarn) {
  Engine engine(g_);
  Result<PreparedQuery> q =
      engine.Prepare("MATCH (x:Account), (y:Phone)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(HasCode(q->diagnostics(), analysis::kCodeCartesianProduct))
      << q->diagnostics().ToString();
}

TEST_F(AnalysisTest, PostfilterJoinSuppressesCartesianWarning) {
  Engine engine(g_);
  Result<PreparedQuery> q = engine.Prepare(
      "MATCH (x:Account), (y:Account) WHERE x.owner = y.owner");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_FALSE(HasCode(q->diagnostics(), analysis::kCodeCartesianProduct))
      << q->diagnostics().ToString();
}

TEST_F(AnalysisTest, SharedVariableSuppressesCartesianWarning) {
  Engine engine(g_);
  Result<PreparedQuery> q =
      engine.Prepare("MATCH (x)-[:Transfer]->(y), (y)-[:Transfer]->(z)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_FALSE(HasCode(q->diagnostics(), analysis::kCodeCartesianProduct))
      << q->diagnostics().ToString();
}

// ---------------------------------------------------------------------------
// Lint API: full pipeline, never fails
// ---------------------------------------------------------------------------

TEST_F(AnalysisTest, LintParseErrorIsSingleSyntaxDiagnostic) {
  Engine engine(g_);
  const std::string text = "MATCH (x";
  analysis::DiagnosticList diags = engine.Lint(text);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags.items()[0].code, analysis::kCodeSyntax);
  EXPECT_EQ(diags.items()[0].severity, analysis::Severity::kError);
  EXPECT_LE(diags.items()[0].span.begin, diags.items()[0].span.end);
  EXPECT_LE(diags.items()[0].span.end, text.size());
}

TEST_F(AnalysisTest, LintSemanticErrorIsSemanticDiagnostic) {
  Engine engine(g_);
  analysis::DiagnosticList diags = engine.Lint("MATCH (x)-[x]->(y)");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags.items()[0].code, analysis::kCodeSemantic);
  EXPECT_EQ(diags.items()[0].severity, analysis::Severity::kError);
}

TEST_F(AnalysisTest, LintCleanQueryIsEmpty) {
  Engine engine(g_);
  EXPECT_TRUE(
      engine.Lint("MATCH (x:Account)-[t:Transfer]->(y:Account)").empty());
}

TEST_F(AnalysisTest, LintRenderProducesCaretSnippet) {
  Engine engine(g_);
  const std::string text = "MATCH (x:Account) WHERE 1 = 2";
  analysis::DiagnosticList diags = engine.Lint(text);
  ASSERT_FALSE(diags.empty());
  std::string rendered = diags.Render(text);
  EXPECT_NE(rendered.find("GPML-W101"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find('^'), std::string::npos) << rendered;
}

TEST_F(AnalysisTest, LintNeverCrashesOnMalformedCorpus) {
  Engine engine(g_);
  const std::vector<std::string> corpus = {
      "",
      "MATCH",
      "MATCH (",
      "MATCH (x",
      "MATCH (x)-[",
      "MATCH (x)-[e]->",
      "MATCH (x)->(y",
      "MATCH (x) WHERE",
      "MATCH (x) WHERE x .",
      "MATCH (x) WHERE x.a = ",
      "MATCH (x:)",
      "MATCH (x:Account&)",
      "MATCH ()()-",
      "MATCH (a)-[:Transfer]->{,2}(b)",
      "MATCH (a)[(x)-[e]->(y)]{1,(b)",
      "WHERE x.a = 1",
      ")))(((",
      "MATCH (x) RETURN x",  // RETURN is a statement, not a pattern.
      "MATCH (x) WHERE $ = 1",
      "MATCH (x WHERE y.a = 1)-[e]->(y)",
  };
  for (const std::string& text : corpus) {
    analysis::DiagnosticList diags = engine.Lint(text);
    for (const analysis::Diagnostic& d : diags) {
      EXPECT_EQ(d.code.rfind("GPML-", 0), 0u) << text;
      EXPECT_LE(d.span.begin, d.span.end) << text;
      EXPECT_LE(d.span.end, text.size()) << text << " span.end="
                                         << d.span.end;
      EXPECT_FALSE(d.message.empty()) << text;
    }
  }
}

TEST_F(AnalysisTest, PaperFigurePatternsLintClean) {
  // Queries of Figures 3-8 (tests/paper_examples_test.cc) against the
  // Figure 1 graph: the analyzer accepts all of them without a finding.
  Engine engine(g_);
  const std::vector<std::string> figures = {
      "MATCH (x:Account WHERE x.isBlocked='yes')",
      "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
      "(:Country WHERE x.owner = 'Scott')",
      "MATCH -[e:Transfer WHERE e.amount>5M]->",
      "MATCH (p:Phone)~[e:hasPhone]~(a1:Account)",
      "MATCH (x)-[:Transfer]->()-[:isLocatedIn]->(y)",
      "MATCH (a)-[t:Transfer]->{1,3}(b)",
      "MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*(b)",
      "MATCH ANY SHORTEST p = (a WHERE a.owner='Dave')-[t:Transfer]->*(b)",
      "MATCH ALL SHORTEST TRAIL p = (a WHERE a.owner='Dave')"
      "-[t:Transfer]->*(b)",
  };
  for (const std::string& text : figures) {
    analysis::DiagnosticList diags = engine.Lint(text);
    EXPECT_TRUE(diags.empty()) << text << "\n" << diags.ToString();
  }
}

TEST_F(AnalysisTest, LintPublishesDiagnosticsCounter) {
  uint64_t before = g_.metrics_registry()
                        ->GetCounter("gpml_diagnostics_emitted_total")
                        ->value();
  Engine engine(g_);
  analysis::DiagnosticList diags =
      engine.Lint("MATCH (x:Account) WHERE 1 = 2");
  ASSERT_FALSE(diags.empty());
  uint64_t after = g_.metrics_registry()
                       ->GetCounter("gpml_diagnostics_emitted_total")
                       ->value();
  EXPECT_EQ(after, before + diags.size());
}

// ---------------------------------------------------------------------------
// Host surfaces: Session::Lint and GraphTableLint
// ---------------------------------------------------------------------------

TEST(AnalysisHostTest, SessionLintRequiresGraph) {
  Catalog catalog;
  Session session(catalog);
  EXPECT_FALSE(session.Lint("MATCH (x)").ok());
}

TEST(AnalysisHostTest, SessionLintReportsWarnings) {
  Catalog catalog;
  catalog.AddGraph("bank", BuildPaperGraph());
  Session session(catalog);
  ASSERT_TRUE(session.UseGraph("bank").ok());
  Result<analysis::DiagnosticList> diags =
      session.Lint("MATCH (x:Acount) WHERE 1 = 2");
  ASSERT_TRUE(diags.ok()) << diags.status();
  EXPECT_TRUE(HasCode(*diags, analysis::kCodeUnknownLabel));
  EXPECT_TRUE(HasCode(*diags, analysis::kCodeAlwaysFalse));
}

TEST(AnalysisHostTest, SessionPrepareFailsOnTypeError) {
  Catalog catalog;
  catalog.AddGraph("bank", BuildPaperGraph());
  Session session(catalog);
  ASSERT_TRUE(session.UseGraph("bank").ok());
  Result<PreparedStatement> p =
      session.Prepare("MATCH (x) WHERE 42 RETURN x");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("GPML-E012"), std::string::npos);
}

TEST(AnalysisHostTest, GraphTableLintReportsWarnings) {
  Catalog catalog;
  catalog.AddGraph("bank", BuildPaperGraph());
  GraphTableQuery query;
  query.graph = "bank";
  query.match = "MATCH (x:Account) WHERE x.owner = 'a' AND x.owner = 'b'";
  Result<analysis::DiagnosticList> diags = GraphTableLint(catalog, query);
  ASSERT_TRUE(diags.ok()) << diags.status();
  EXPECT_TRUE(HasCode(*diags, analysis::kCodeContradictoryEq));
}

TEST(AnalysisHostTest, GraphTableLintStripsExplainPrefix) {
  Catalog catalog;
  catalog.AddGraph("bank", BuildPaperGraph());
  GraphTableQuery query;
  query.graph = "bank";
  query.match = "EXPLAIN MATCH (x:Account) WHERE 1 = 2";
  Result<analysis::DiagnosticList> diags = GraphTableLint(catalog, query);
  ASSERT_TRUE(diags.ok()) << diags.status();
  EXPECT_TRUE(HasCode(*diags, analysis::kCodeAlwaysFalse));
  EXPECT_FALSE(HasCode(*diags, analysis::kCodeSyntax));
}

TEST(AnalysisHostTest, GraphTableLintUnknownGraphIsError) {
  Catalog catalog;
  GraphTableQuery query;
  query.graph = "nope";
  query.match = "MATCH (x)";
  EXPECT_FALSE(GraphTableLint(catalog, query).ok());
}

TEST(AnalysisHostTest, GraphTableExecutesAlwaysFalseEmpty) {
  Catalog catalog;
  catalog.AddGraph("bank", BuildPaperGraph());
  GraphTableQuery query;
  query.graph = "bank";
  query.match = "MATCH (x:Account) WHERE 1 = 2";
  query.columns = "x.owner AS owner";
  Result<Table> table = GraphTable(catalog, query);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->num_rows(), 0u);
}

// ---------------------------------------------------------------------------
// EXPLAIN: warnings section, roundtrip through ParseExplain
// ---------------------------------------------------------------------------

TEST_F(AnalysisTest, ExplainRendersWarningsSection) {
  Engine engine(g_);
  Result<std::string> text =
      engine.Explain("MATCH (x:Account) WHERE 1 = 2");
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("warnings: "), std::string::npos) << *text;
  EXPECT_NE(text->find("code=GPML-W101"), std::string::npos) << *text;
}

TEST_F(AnalysisTest, ExplainWithoutWarningsHasNoSection) {
  Engine engine(g_);
  Result<std::string> text =
      engine.Explain("MATCH (x:Account)-[t:Transfer]->(y)");
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_EQ(text->find("warnings"), std::string::npos) << *text;
  Result<planner::ExplainedPlan> parsed = planner::ParseExplain(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->warnings.empty());
}

TEST_F(AnalysisTest, ExplainWarningsRoundtripByteExact) {
  Engine engine(g_);
  const std::string q =
      "MATCH (x:Account) WHERE x.owner = 'Scott' AND x.owner = 'Mike'";
  Result<PreparedQuery> prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  Result<std::string> text = engine.Explain(q);
  ASSERT_TRUE(text.ok()) << text.status();
  Result<planner::ExplainedPlan> parsed = planner::ParseExplain(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << *text;

  const analysis::DiagnosticList& diags = prepared->diagnostics();
  ASSERT_EQ(parsed->warnings.size(), diags.size());
  for (size_t i = 0; i < diags.size(); ++i) {
    const analysis::Diagnostic& d = diags.items()[i];
    const planner::ExplainedWarning& w = parsed->warnings[i];
    EXPECT_EQ(w.code, d.code);
    EXPECT_EQ(w.severity, analysis::SeverityName(d.severity));
    EXPECT_EQ(w.begin, d.span.begin);
    EXPECT_EQ(w.end, d.span.end);
    // Messages and hints carry spaces, quotes, and `offset=` markers —
    // escaping must recover them byte-exactly.
    EXPECT_EQ(w.message, d.message);
    EXPECT_EQ(w.hint, d.hint);
  }
}

TEST_F(AnalysisTest, SessionExplainCarriesWarnings) {
  Catalog catalog;
  catalog.AddGraph("bank", BuildPaperGraph());
  Session session(catalog);
  ASSERT_TRUE(session.UseGraph("bank").ok());
  Result<std::string> text =
      session.Explain("MATCH (x:Account) WHERE 1 = 2 RETURN x");
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("code=GPML-W101"), std::string::npos) << *text;
}

// ---------------------------------------------------------------------------
// Analyzer unit surface: AnalyzeQuery over a schema-less graph
// ---------------------------------------------------------------------------

TEST_F(AnalysisTest, SchemaLintsSkippedWithoutGraph) {
  // AnalyzeQuery accepts graph == nullptr (no schema to lint against):
  // unknown-name findings are skipped, satisfiability still runs.
  Result<GraphPattern> pattern =
      ParseGraphPattern("MATCH (x:NoSuchLabel) WHERE 1 = 2");
  ASSERT_TRUE(pattern.ok()) << pattern.status();
  Result<GraphPattern> normalized = Normalize(*pattern);
  ASSERT_TRUE(normalized.ok()) << normalized.status();
  Result<Analysis> sem = Analyze(*normalized);
  ASSERT_TRUE(sem.ok()) << sem.status();
  analysis::QueryAnalysis qa =
      analysis::AnalyzeQuery(*normalized, *sem, /*graph=*/nullptr);
  EXPECT_FALSE(HasCode(qa.diagnostics, analysis::kCodeUnknownLabel));
  EXPECT_TRUE(HasCode(qa.diagnostics, analysis::kCodeAlwaysFalse));
  EXPECT_TRUE(qa.always_empty);
}

}  // namespace
}  // namespace gpml
