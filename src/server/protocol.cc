#include "server/protocol.h"

#include <cstdio>

#include "gql/json_export.h"

namespace gpml {
namespace server {

WireError ToWireError(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return {0, "OK"};
    case StatusCode::kInvalidArgument: return {100, "INVALID_ARGUMENT"};
    case StatusCode::kSyntaxError: return {101, "SYNTAX_ERROR"};
    case StatusCode::kSemanticError: return {102, "SEMANTIC_ERROR"};
    case StatusCode::kNonTerminating: return {103, "NON_TERMINATING"};
    case StatusCode::kNotFound: return {104, "NOT_FOUND"};
    case StatusCode::kAlreadyExists: return {105, "ALREADY_EXISTS"};
    case StatusCode::kResourceExhausted: return {106, "RESOURCE_EXHAUSTED"};
    case StatusCode::kUnimplemented: return {107, "UNIMPLEMENTED"};
    case StatusCode::kInternal: return {108, "INTERNAL"};
  }
  return {108, "INTERNAL"};
}

StatusCode FromWireCode(int code) {
  switch (code) {
    case 0: return StatusCode::kOk;
    case 100: return StatusCode::kInvalidArgument;
    case 101: return StatusCode::kSyntaxError;
    case 102: return StatusCode::kSemanticError;
    case 103: return StatusCode::kNonTerminating;
    case 104: return StatusCode::kNotFound;
    case 105: return StatusCode::kAlreadyExists;
    case 106: return StatusCode::kResourceExhausted;
    case 107: return StatusCode::kUnimplemented;
    case 108: return StatusCode::kInternal;
    default: return StatusCode::kInternal;
  }
}

std::string ValueToWireJson(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return value.bool_value() ? "true" : "false";
    case ValueType::kInt: return std::to_string(value.int_value());
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", value.double_value());
      std::string s = buf;
      if (s.find_first_of(".eE") == std::string::npos &&
          s.find_first_of("nN") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueType::kString:
      return "\"" + JsonEscape(value.string_value()) + "\"";
  }
  return "null";
}

Result<Value> WireJsonToValue(const JsonValue& json) {
  switch (json.type) {
    case JsonValue::Type::kNull: return Value::Null();
    case JsonValue::Type::kBool: return Value::Bool(json.bool_v);
    case JsonValue::Type::kInt: return Value::Int(json.int_v);
    case JsonValue::Type::kDouble: return Value::Double(json.double_v);
    case JsonValue::Type::kString: return Value::String(json.string_v);
    case JsonValue::Type::kArray:
    case JsonValue::Type::kObject:
      return Status::InvalidArgument(
          "parameter values must be scalars (null/bool/number/string)");
  }
  return Status::InvalidArgument("unrecognized parameter value");
}

Result<Params> WireJsonToParams(const JsonValue& json) {
  Params params;
  if (json.is_null()) return params;  // Absent "params" = no bindings.
  if (!json.is_object()) {
    return Status::InvalidArgument("\"params\" must be a JSON object");
  }
  for (const auto& [name, value_json] : json.object_v) {
    GPML_ASSIGN_OR_RETURN(Value value, WireJsonToValue(value_json));
    params[name] = std::move(value);
  }
  return params;
}

std::string ParamsToWireJson(const Params& params) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : params) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + ValueToWireJson(value);
  }
  return out + "}";
}

std::string ErrorResponse(const Status& status, const std::string& reason,
                          const std::string& id_raw) {
  WireError wire = ToWireError(status.code());
  std::string out = "{\"ok\":false";
  if (!id_raw.empty()) out += ",\"id\":" + id_raw;
  out += ",\"error\":{\"code\":" + std::to_string(wire.code) + ",\"name\":\"" +
         wire.name + "\",\"message\":\"" + JsonEscape(status.message()) + "\"";
  if (!reason.empty()) {
    out += ",\"reason\":\"" + JsonEscape(reason) + "\"";
  }
  out += "}}";
  return out;
}

std::string OkResponseHead(const std::string& id_raw) {
  std::string out = "{\"ok\":true";
  if (!id_raw.empty()) out += ",\"id\":" + id_raw;
  return out;
}

Status StatusFromWireError(const JsonValue& error) {
  StatusCode code = StatusCode::kInternal;
  const JsonValue* code_json = error.Find("code");
  if (code_json != nullptr && code_json->is_int()) {
    code = FromWireCode(static_cast<int>(code_json->int_v));
  }
  std::string message = "server error";
  const JsonValue* msg_json = error.Find("message");
  if (msg_json != nullptr && msg_json->is_string()) {
    message = msg_json->string_v;
  }
  std::string reason = ReasonFromWireError(error);
  if (!reason.empty()) message = "[" + reason + "] " + message;
  if (code == StatusCode::kOk) code = StatusCode::kInternal;
  return Status(code, std::move(message));
}

std::string ReasonFromWireError(const JsonValue& error) {
  const JsonValue* reason = error.Find("reason");
  if (reason != nullptr && reason->is_string()) return reason->string_v;
  return "";
}

}  // namespace server
}  // namespace gpml
