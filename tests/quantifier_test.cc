#include <gtest/gtest.h>

#include "graph/generator.h"
#include "graph/sample_graph.h"
#include "test_util.h"

namespace gpml {
namespace {

using testing_util::CountRows;
using testing_util::Rows;

// E9: quantifiers (Figure 6) and group variables (§4.4).

TEST(QuantifierTest, FixedRepetitionOnChain) {
  PropertyGraph g = MakeChainGraph(6);  // v0 -> v1 -> ... -> v5.
  EXPECT_EQ(Rows(g, "MATCH (a)-[:Transfer]->{3}(b)", "a, b"),
            (std::vector<std::string>{"v0|v3", "v1|v4", "v2|v5"}));
}

TEST(QuantifierTest, RangeOnChain) {
  PropertyGraph g = MakeChainGraph(5);
  // {2,3}: length-2 and length-3 subchains.
  EXPECT_EQ(Rows(g, "MATCH (a)->{2,3}(b)", "a, b"),
            (std::vector<std::string>{"v0|v2", "v0|v3", "v1|v3", "v1|v4",
                                      "v2|v4"}));
}

TEST(QuantifierTest, StarIncludesZeroLength) {
  PropertyGraph g = MakeChainGraph(3);
  // (a)->*(b) under TRAIL: zero-length matches bind a=b.
  std::vector<std::string> rows =
      Rows(g, "MATCH TRAIL (a)-[:Transfer]->*(b)", "a, b");
  EXPECT_EQ(rows, (std::vector<std::string>{"v0|v0", "v0|v1", "v0|v2",
                                            "v1|v1", "v1|v2", "v2|v2"}));
}

TEST(QuantifierTest, PlusExcludesZeroLength) {
  PropertyGraph g = MakeChainGraph(3);
  EXPECT_EQ(Rows(g, "MATCH TRAIL (a)-[:Transfer]->+(b)", "a, b"),
            (std::vector<std::string>{"v0|v1", "v0|v2", "v1|v2"}));
}

TEST(QuantifierTest, PaperTransferChain2to5) {
  // §4.4: (a:Account)-[:Transfer]->{2,5}(b:Account) on the paper graph.
  PropertyGraph g = BuildPaperGraph();
  size_t n = CountRows(g, "MATCH (a:Account)-[:Transfer]->{2,5}(b:Account)");
  EXPECT_GT(n, 0u);
  // Walks of length 2..5 may revisit; spot-check one known pair: a1 to a4
  // via t1,t2,t3 (length 3).
  std::vector<std::string> rows =
      Rows(g, "MATCH (a:Account)-[:Transfer]->{2,5}(b:Account)", "a, b");
  EXPECT_NE(std::find(rows.begin(), rows.end(), "a1|a4"), rows.end());
}

TEST(QuantifierTest, ParenthesizedPerIterationWhere) {
  // §4.4: WHERE applies to each iteration's bindings separately.
  PropertyGraph g = BuildPaperGraph();
  // Chains of 2 transfers, each >5M. t1(8M),t2(10M) qualifies;
  // t6(4M) disqualifies any chain through it.
  std::vector<std::string> rows = Rows(
      g, "MATCH (a:Account) [()-[t:Transfer WHERE t.amount>5M]->()]{2} "
         "(b:Account)",
      "a, b");
  EXPECT_NE(std::find(rows.begin(), rows.end(), "a1|a2"), rows.end())
      << "a1-t1->a3-t2->a2 all >5M";
  for (const std::string& r : rows) {
    EXPECT_EQ(r.find("ERROR"), std::string::npos) << r;
  }
  // No chain through t6 (a6->a5, 4M): the pair (a4, a5) via t4,t6 must be
  // absent unless another route exists — a4-t4->a6-t6->a5 is the only
  // 2-chain from a4 to a5.
  EXPECT_EQ(std::find(rows.begin(), rows.end(), "a4|a5"), rows.end());
}

TEST(QuantifierTest, GroupAggregatePostfilter) {
  // §4.4: SUM over the group variable crosses the quantifier.
  PropertyGraph g = BuildPaperGraph();
  std::vector<std::string> rows = Rows(
      g,
      "MATCH (a:Account) [()-[t:Transfer WHERE t.amount>1M]->()]{2,5} "
      "(b:Account) WHERE SUM(t.amount)>10M",
      "a, b, SUM(t.amount)");
  ASSERT_FALSE(rows.empty());
  for (const std::string& r : rows) {
    // Every surviving row's total exceeds 10M.
    size_t pos = r.rfind('|');
    EXPECT_GT(std::stoll(r.substr(pos + 1)), 10'000'000) << r;
  }
}

TEST(QuantifierTest, CountGroupVariable) {
  PropertyGraph g = MakeChainGraph(5);
  std::vector<std::string> rows =
      Rows(g, "MATCH (a WHERE a.owner='u0')-[t:Transfer]->{2,4}(b)",
           "b, COUNT(t)");
  EXPECT_EQ(rows, (std::vector<std::string>{"v2|2", "v3|3", "v4|4"}));
}

TEST(QuantifierTest, NestedQuantifiers) {
  PropertyGraph g = MakeChainGraph(7);
  // [( )->{2}( )]{1,2}: 2 or 4 edges in total.
  EXPECT_EQ(Rows(g, "MATCH (a WHERE a.owner='u0') [()->{2}()]{1,2} (b)",
                 "b"),
            (std::vector<std::string>{"v2", "v4"}));
}

TEST(QuantifierTest, ZeroIterationsJoinEndpoints) {
  PropertyGraph g = MakeChainGraph(3);
  // {0,1} with zero iterations: (a) and (b) coincide.
  std::vector<std::string> rows =
      Rows(g, "MATCH (a)[()-[:Transfer]->()]{0,1}(b)", "a, b");
  EXPECT_NE(std::find(rows.begin(), rows.end(), "v0|v0"), rows.end());
  EXPECT_NE(std::find(rows.begin(), rows.end(), "v0|v1"), rows.end());
}

TEST(QuantifierTest, UnboundedRequiresScopeAtRuntimeToo) {
  PropertyGraph g = MakeCycleGraph(3);
  Status st = testing_util::MatchStatusOf(g, "MATCH (a)-[:Transfer]->*(b)");
  EXPECT_EQ(st.code(), StatusCode::kNonTerminating);
}

TEST(QuantifierTest, UnboundedOnCycleWithTrailTerminates) {
  PropertyGraph g = MakeCycleGraph(4);
  // All trails on a 4-cycle: each start node reaches lengths 0..4.
  std::vector<std::string> rows =
      Rows(g, "MATCH TRAIL (a WHERE a.owner='u0')-[:Transfer]->*(b)", "b");
  EXPECT_EQ(rows,
            (std::vector<std::string>{"v0", "v0", "v1", "v2", "v3"}))
      << "zero-length at v0 plus the full cycle back to v0";
}

TEST(QuantifierTest, BoundedQuantifierOverUnionBody) {
  PropertyGraph g = BuildPaperGraph();
  // Each iteration may pick either branch.
  std::vector<std::string> rows = Rows(
      g,
      "MATCH (a WHERE a.owner='Scott') "
      "[()-[:Transfer]->() | ()<-[:Transfer]-()]{2} (b)",
      "b");
  // Forward-forward: a1->a3->{a2,a5}; forward-backward: a1->a3<-{a1,a6};
  // backward-forward: a1<-a5->a1? a5-t8->a1 so backward step a1<-t8-a5 then
  // forward a5->a1: yields a1 ... assert a sample.
  EXPECT_NE(std::find(rows.begin(), rows.end(), "a2"), rows.end());
  EXPECT_NE(std::find(rows.begin(), rows.end(), "a6"), rows.end());
}

}  // namespace
}  // namespace gpml
