#include "baseline/crpq.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "baseline/rpq_nfa.h"

namespace gpml {
namespace baseline {

namespace {

/// A relation over a subset of variables: column names + node tuples.
struct Relation {
  std::vector<std::string> vars;
  std::vector<std::vector<NodeId>> tuples;
};

int FindVar(const Relation& r, const std::string& var) {
  for (size_t i = 0; i < r.vars.size(); ++i) {
    if (r.vars[i] == var) return static_cast<int>(i);
  }
  return -1;
}

/// Natural join on the shared variables.
Relation Join(const Relation& a, const Relation& b) {
  std::vector<std::pair<int, int>> shared;
  std::vector<int> b_new_cols;
  for (size_t j = 0; j < b.vars.size(); ++j) {
    int i = FindVar(a, b.vars[j]);
    if (i >= 0) {
      shared.push_back({i, static_cast<int>(j)});
    } else {
      b_new_cols.push_back(static_cast<int>(j));
    }
  }

  Relation out;
  out.vars = a.vars;
  for (int j : b_new_cols) out.vars.push_back(b.vars[static_cast<size_t>(j)]);

  // Hash b on shared columns.
  auto key_of = [&](const std::vector<NodeId>& tuple,
                    bool from_a) -> uint64_t {
    uint64_t h = 1469598103934665603ULL;
    for (auto& [ai, bj] : shared) {
      NodeId v = from_a ? tuple[static_cast<size_t>(ai)]
                        : tuple[static_cast<size_t>(bj)];
      h = (h ^ v) * 1099511628211ULL;
    }
    return h;
  };
  std::unordered_map<uint64_t, std::vector<size_t>> index;
  for (size_t t = 0; t < b.tuples.size(); ++t) {
    index[key_of(b.tuples[t], false)].push_back(t);
  }

  for (const auto& ta : a.tuples) {
    auto it = index.find(key_of(ta, true));
    if (it == index.end()) continue;
    for (size_t t : it->second) {
      const auto& tb = b.tuples[t];
      bool ok = true;
      for (auto& [ai, bj] : shared) {
        if (ta[static_cast<size_t>(ai)] != tb[static_cast<size_t>(bj)]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      std::vector<NodeId> merged = ta;
      for (int j : b_new_cols) merged.push_back(tb[static_cast<size_t>(j)]);
      out.tuples.push_back(std::move(merged));
    }
  }
  return out;
}

bool PassesFilters(const PropertyGraph& g, NodeId n,
                   const std::vector<const CrpqFilter*>& filters) {
  for (const CrpqFilter* f : filters) {
    const NodeData& nd = g.node(n);
    if (!f->label.empty() && !nd.HasLabel(f->label)) return false;
    if (!f->property.empty() &&
        !(nd.GetProperty(f->property) == f->value)) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<Table> EvalCrpq(const PropertyGraph& g, const CrpqQuery& query) {
  // Group filters by variable.
  std::unordered_map<std::string, std::vector<const CrpqFilter*>> filters;
  for (const CrpqFilter& f : query.filters) {
    filters[f.var].push_back(&f);
  }
  auto var_ok = [&](const std::string& var, NodeId n) {
    auto it = filters.find(var);
    return it == filters.end() || PassesFilters(g, n, it->second);
  };

  Relation acc;
  bool first = true;
  for (const CrpqAtom& atom : query.atoms) {
    GPML_ASSIGN_OR_RETURN(RegexPtr regex, ParseRegex(atom.regex));
    RpqNfa nfa = BuildNfa(*regex);

    Relation rel;
    rel.vars = {atom.from_var, atom.to_var};
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      if (!var_ok(atom.from_var, n)) continue;
      for (NodeId m : EvalReachableFrom(g, nfa, n)) {
        if (!var_ok(atom.to_var, m)) continue;
        if (atom.from_var == atom.to_var && n != m) continue;
        rel.tuples.push_back({n, m});
      }
    }
    acc = first ? std::move(rel) : Join(acc, rel);
    first = false;
  }

  // Project output variables.
  std::vector<ColumnDef> cols;
  std::vector<int> indices;
  for (const std::string& v : query.output_vars) {
    cols.push_back({v, ValueType::kString, true});
    int i = FindVar(acc, v);
    if (i < 0) {
      return Status::SemanticError("output variable " + v +
                                   " not bound by any atom");
    }
    indices.push_back(i);
  }
  Table table{Schema(std::move(cols))};
  std::set<Row> dedup;
  for (const auto& tuple : acc.tuples) {
    Row row;
    row.reserve(indices.size());
    for (int i : indices) {
      row.push_back(Value::String(g.node(tuple[static_cast<size_t>(i)]).name));
    }
    if (dedup.insert(row).second) table.AppendUnchecked(std::move(row));
  }
  return table;
}

}  // namespace baseline
}  // namespace gpml
