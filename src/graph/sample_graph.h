#ifndef GPML_GRAPH_SAMPLE_GRAPH_H_
#define GPML_GRAPH_SAMPLE_GRAPH_H_

#include "graph/property_graph.h"

namespace gpml {

/// Builds the banking/fraud property graph of Figure 1 — the graph against
/// which every worked example in the paper is evaluated.
///
/// Contents (reconstructed from Figure 1 plus the worked examples in
/// §2, §4, §5 and §6, which pin down every endpoint):
///  * Accounts a1..a6 (owners Scott, Aretha, Mike, Jay, Charles, Dave; only
///    Jay's account a4 has isBlocked='yes').
///  * Places c1 (Country "Zembla") and c2 (City & Country "Ankh-Morpork").
///  * Phones p1..p4 (numbers 111..444, none blocked) and IPs ip1, ip2.
///  * Transfer t1..t8 (directed, with date and amount):
///      t1 a1->a3 8M, t2 a3->a2 10M, t3 a2->a4 10M, t4 a4->a6 10M,
///      t5 a6->a3 10M, t6 a6->a5 4M, t7 a3->a5 6M, t8 a5->a1 9M.
///  * isLocatedIn li1..li6 (directed): a_i -> c1 for i in {1,3,5},
///    a_i -> c2 for i in {2,4,6}.
///  * hasPhone hp1..hp6 (undirected): a1~p1, a2~p2, a3~p2, a4~p3, a5~p1,
///    a6~p4 (hp3 connecting a3 and p2 is pinned by the §2 example path;
///    the a5/a1 and a3/a2 phone sharing is pinned by the §4.2 example).
///  * signInWithIP sip1 a1->ip1, sip2 a5->ip2 (directed account-to-IP, as in
///    the Figure 2 table which lists columns A_ID, s_ID).
PropertyGraph BuildPaperGraph();

}  // namespace gpml

#endif  // GPML_GRAPH_SAMPLE_GRAPH_H_
