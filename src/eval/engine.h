#ifndef GPML_EVAL_ENGINE_H_
#define GPML_EVAL_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "ast/ast.h"
#include "common/result.h"
#include "eval/binding.h"
#include "eval/expr_eval.h"
#include "eval/matcher.h"
#include "eval/params.h"
#include "graph/property_graph.h"
#include "obs/query_stats.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "planner/explain.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"
#include "semantics/analyze.h"

namespace gpml {

/// Execution counters of one execution (Engine::Match, PreparedQuery
/// execution, or a Cursor stream), aggregated over all path declarations.
/// Filled when EngineOptions::metrics points here; the planner benchmarks
/// compare these with the planner on and off.
///
/// Deliberately plain scalar fields (the benchmarks depend on the struct
/// staying POD): nothing increments them during execution. Worker shards
/// count into shard-local MatchStats and the totals are merged into this
/// struct once per declaration, after all shards have joined — so a
/// num_threads > 1 run never races on these fields. Cursor streams update
/// the struct between pulls (single-threaded caller context).
///
/// Reset-on-execute: every execution (including Cursor construction, which
/// starts a stream) zeroes the struct before filling it, so the fields
/// always describe the latest execution — a cursor's counters grow as rows
/// are pulled and are final when the stream ends (docs/observability.md).
struct EngineMetrics {
  size_t decls = 0;                // Path declarations executed.
  size_t seeded_nodes = 0;         // Start nodes seeded, summed over decls.
  size_t matcher_steps = 0;        // Matcher instructions executed.
  size_t reversed_decls = 0;       // Declarations run against the mirrored
                                   // pattern (right-end anchor).
  size_t seed_filtered_decls = 0;  // Declarations seeded from the bindings
                                   // of earlier declarations.
  size_t threads = 0;              // Resolved worker count of this call.
  size_t plan_cache_hits = 0;      // 1 when the compiled plan came from the
                                   // graph's plan cache, else 0.
  size_t plan_cache_misses = 0;    // 1 on a fresh compile, else 0.
  size_t index_seeded_decls = 0;   // Declarations seeded from the equality
                                   // (label, prop) = value hash index.
  size_t rows = 0;                 // Result rows delivered (post mode filter
                                   // and postfilter; cursor: emitted so far).
  size_t budget_truncated = 0;     // 1 when the output was cut short by an
                                   // evaluation budget (BudgetPolicy::
                                   // kTruncate) — distinct from a LIMIT stop.
  size_t batch_blocks = 0;         // Frontier blocks the batch matcher
                                   // expanded (0 = scalar route throughout).
  size_t batch_candidates = 0;     // Adjacency candidates gathered.
  size_t batch_survivors = 0;      // Candidates surviving all filter passes.
  // Wall-clock stage totals in milliseconds (monotonic clock), the same
  // measurements the trace spans carry (docs/observability.md):
  double plan_ms = 0;              // Parse plus compile cost this execution
                                   // paid; the compile half is 0 on a plan-
                                   // cache hit (a past execution paid it).
  double seed_ms = 0;              // Seed-list derivation, over all decls.
  double exec_ms = 0;              // Pattern matching (RunPattern wall),
                                   // over all decls; cursor streams
                                   // accumulate this across pulls.
};

struct EngineOptions {
  MatcherOptions matcher;
  size_t max_rows = 1u << 20;  // Join-output guard.
  /// Statistics-driven planning: anchor-end selection (running a pattern
  /// from its more selective endpoint, mirrored when that is the right one),
  /// join ordering, and seed lists restricted to already-bound variables.
  /// Off reproduces the unplanned engine exactly (differential testing).
  bool use_planner = true;
  /// Seed-partitioned parallel matching: per-declaration seed lists are
  /// sharded over this many worker threads and the per-shard match sets are
  /// merged in seed-index order, so results are byte-identical to the
  /// sequential run (see docs/parallel.md). 0 resolves to
  /// std::thread::hardware_concurrency(); 1 runs the exact sequential
  /// engine. Overrides MatcherOptions::num_threads.
  size_t num_threads = 0;
  /// Compiled-plan reuse: cache (normalized pattern, vars, plan, compiled
  /// programs) on the graph keyed by (graph identity token, pattern
  /// fingerprint) so repeated queries skip normalize/analyze/plan/compile
  /// (see planner/plan_cache.h). The cache is shared by every engine/host
  /// over the same graph. The fingerprint renders $parameters as
  /// placeholders, so executions differing only in bound values share one
  /// entry (docs/planner.md).
  bool use_plan_cache = true;
  /// Interned-storage fast paths (docs/storage.md): label-partitioned CSR
  /// expansion and compiled symbol-id label predicates in the matcher. Off
  /// runs the legacy full-adjacency scans with string label matching — the
  /// differential oracle. Rows are byte-identical either way.
  bool use_csr = true;
  /// Planner seeding from the (label, prop) = value equality hash index
  /// when an anchor endpoint carries a matching inline predicate (EXPLAIN:
  /// `source=index:<label>.<prop>`). The predicate may compare against a
  /// $parameter; the index value is then resolved at bind time. Off falls
  /// back to label-scan seeding; rows are identical, only the seed list
  /// shrinks.
  bool use_seed_index = true;
  /// Block-at-a-time frontier expansion in the matcher (docs/vectorized.md):
  /// linear fixed-length patterns expand whole frontier blocks over the CSR
  /// with selection-vector filtering and predicate kernels compiled at
  /// plan-bind time. Off runs the tuple-at-a-time interpreter for every
  /// pattern — the differential oracle, like use_csr above. Rows are
  /// byte-identical either way; patterns outside the eligible shape fall
  /// back to the scalar route automatically. Overrides
  /// MatcherOptions::use_batch.
  bool use_batch = true;
  /// Static query analysis at prepare time (docs/analysis.md): typed
  /// diagnostics over the normalized pattern — type errors fail Prepare,
  /// warnings ride on the compiled plan (EXPLAIN `warnings=`), provably
  /// unsatisfiable patterns compile to the cached empty plan (execution
  /// publishes 0 seeds / 0 steps), and always-true postfilter conjuncts
  /// are dropped. Off reproduces the unanalyzed pipeline exactly — the
  /// differential oracle for the analyzer (rows are identical either way;
  /// only type-error queries that would fail at evaluation time prepare
  /// successfully with it off).
  bool use_analysis = true;
  /// What happens when an evaluation budget (MatcherOptions::max_steps /
  /// max_matches, EngineOptions::max_rows) trips. kError (the historical
  /// behavior) fails the call with kResourceExhausted and no rows. kTruncate
  /// delivers the rows found so far with MatchOutput::truncated (or
  /// Cursor::truncated()) set and EngineMetrics::budget_truncated = 1 —
  /// never silently: a capped result is always either an error or a
  /// flagged partial. Truncated row sets are best-effort (deterministic
  /// only for single-shard runs); full results are unaffected.
  enum class BudgetPolicy { kError, kTruncate };
  BudgetPolicy on_budget = BudgetPolicy::kError;
  /// When non-null, reset and filled on every execution.
  EngineMetrics* metrics = nullptr;
  /// When non-null, cleared and refilled with this execution's span tree:
  /// parse/plan (replayed from the plan-cache entry's stored compile
  /// costs), per-declaration seed and worker-shard spans, join, and the
  /// final filter (docs/observability.md lists the taxonomy). Not
  /// thread-safe — one trace per concurrently executing call.
  obs::Trace* trace = nullptr;
  /// When non-null, every completed execution's trace is emitted here as
  /// JSON lines (a trace is built internally even when `trace` is null).
  /// Sinks must be thread-safe: the engine emits from whichever thread
  /// runs the execution.
  obs::TraceSink* trace_sink = nullptr;
  /// Publish per-execution counters and stage-latency histograms into the
  /// graph's registry (PropertyGraph::metrics_registry) — shared across
  /// engines and hosts over the same graph, exported by
  /// obs::RenderPrometheus. Lock-free increments, on by default; off only
  /// for overhead measurement (bench/bench_obs.cc).
  bool publish_metrics = true;
  /// Executions slower than this wall-clock threshold (ms) are captured —
  /// parameterized fingerprint, EXPLAIN ANALYZE text, trace JSON — into
  /// `slow_log`, or the process-wide obs::GlobalSlowQueryLog() when that
  /// is null. Negative disables slow-query capture. Streaming cursors
  /// measure open-to-finish and capture when the stream completes;
  /// abandoned streams are never captured.
  double slow_query_ms = 1000.0;
  obs::SlowQueryLog* slow_log = nullptr;
  /// Fold every completed execution — success, error, or truncation — into
  /// the per-fingerprint workload statistics store (obs/query_stats.h):
  /// cumulative calls/rows/steps, a log2 latency histogram, and the plan
  /// ring that detects replans. One short mutexed update per completion,
  /// inside the bench_obs 2% budget. Off only for overhead measurement.
  bool publish_query_stats = true;
  /// The store to record into; null uses obs::GlobalQueryStats(). The
  /// server passes its own store only in tests — production shares the
  /// global one so /query_stats sees every graph.
  obs::QueryStatsStore* query_stats = nullptr;
  /// Workload attribution, stamped into query-stats entries, slow-query
  /// records, and the execution trace root. The server sets these per
  /// request; in-process hosts leave them empty.
  std::string tenant;
  std::string trace_id;  // Client-supplied correlation id.
};

/// One solution of a graph pattern: a path binding per path declaration
/// (§6.5 "Multiple patterns"), sharing singleton variables.
struct ResultRow {
  std::vector<std::shared_ptr<const PathBinding>> bindings;
};

/// The output of pattern matching, self-contained: rows plus the compiled
/// context needed to interpret them (variable table, normalized pattern with
/// the expressions the rows may be projected through, per-declaration path
/// variables, and the $parameter bindings of this execution).
struct MatchOutput {
  std::vector<ResultRow> rows;
  std::shared_ptr<const VarTable> vars;
  GraphPattern normalized;        // Keeps pattern ASTs alive.
  std::vector<int> path_vars;     // Per declaration; -1 when absent.
  /// The $name bindings this output was produced under (RETURN/COLUMNS
  /// expressions may reference them); nullptr for parameter-free queries.
  std::shared_ptr<const Params> params;
  /// True when rows is an incomplete prefix because an evaluation budget
  /// tripped under BudgetPolicy::kTruncate (never set by a clean LIMIT).
  bool truncated = false;

  size_t size() const { return rows.size(); }
};

/// Expression scope over one result row: singleton lookups see the last
/// binding of a variable, group collections span the whole row, path
/// variables resolve to their declaration's matched path, $parameters to
/// the execution's bindings. Used for the final WHERE postfilter and by
/// both hosts for projection.
class RowScope : public EvalScope {
 public:
  RowScope(const MatchOutput& output, const ResultRow& row)
      : output_(output), row_(row) {}

  std::optional<ElementRef> LookupSingleton(int var) const override;
  std::vector<ElementRef> CollectGroup(int var) const override;
  const Path* LookupPath(int var) const override;
  const Value* LookupParam(const std::string& name) const override {
    return FindParam(output_.params.get(), name);
  }

 private:
  const MatchOutput& output_;
  const ResultRow& row_;
};

class Cursor;
class Engine;

/// A non-owning view of one streamed result row: the row itself plus the
/// compiled context needed to interpret it (`context->rows` stays empty —
/// RowScope{*view.context, *view.row} evaluates expressions against it).
/// Valid until the next Cursor::Next call.
struct RowView {
  const ResultRow* row = nullptr;
  const MatchOutput* context = nullptr;
};

/// A parsed, analyzed, planned, and compiled graph-pattern query with
/// $name parameter placeholders — the prepare-once/bind-per-call half of
/// the execution API (docs/api.md). Obtained from Engine::Prepare; cheap to
/// copy (the compiled plan is shared, and on the graph's plan cache also
/// shared with every other engine/host preparing the same pattern text).
/// The graph must outlive the prepared query; hosts keep the catalog's
/// shared_ptr alongside.
class PreparedQuery {
 public:
  /// The $parameters the pattern references, with inferred constraints;
  /// Execute/Open validate bindings against this before running.
  const ParamSignature& signature() const { return signature_; }

  /// True when Prepare served the compiled plan from the graph's plan
  /// cache instead of compiling fresh.
  bool from_cache() const { return cache_hit_; }

  /// The static analyzer's findings for this query (warnings and notes —
  /// errors failed Prepare). Empty when EngineOptions::use_analysis is off
  /// or the query is clean. Carried through plan-cache hits.
  const analysis::DiagnosticList& diagnostics() const {
    return plan_->diagnostics;
  }

  /// True when the analyzer proved the pattern can never match: Execute and
  /// Open return no rows without seeding or matching (docs/analysis.md).
  bool always_empty() const { return plan_->always_empty; }

  /// Wall-clock cost of the static analysis pass paid when this plan was
  /// compiled (0 when use_analysis is off; a cache hit reports the cost
  /// the original compile paid). Benchmarked by bench_query_api.
  double analysis_ms() const { return plan_->analysis_ms; }

  /// Extends the bindable signature with parameters referenced by host
  /// statement positions outside the pattern (GQL RETURN items, SQL/PGQ
  /// COLUMNS items), so Execute/Open accept their bindings and the
  /// projection scope can resolve them.
  void ExtendSignature(const ParamSignature& extra) {
    signature_.Merge(extra);
  }

  /// A copy of this prepared query that executes under different engine
  /// options — same graph, same shared compiled plan, nothing recompiled.
  /// The server layer (src/server/) uses this to attach a per-execution
  /// metrics sink and to tighten the matcher's step/match caps to a
  /// tenant's admission quota (each execution's SharedBudget is built
  /// from those caps) without paying Prepare again or mutating the
  /// statement other executions share.
  PreparedQuery WithOptions(EngineOptions options) const {
    PreparedQuery copy(*this);
    copy.options_ = options;
    return copy;
  }

  /// Materializing execution — row-identical to Engine::Match on the same
  /// pattern with the bound values written as literals (prepared-vs-literal
  /// differential tests assert this).
  Result<MatchOutput> Execute(const Params& params = {}) const;

  /// Streaming execution: rows are pulled through the returned cursor and
  /// are byte-identical to Execute's row sequence ( a prefix of it under
  /// `limit`). Single fixed-length declarations stream incrementally out of
  /// the matcher in seed-order chunks, so the first row does not pay for
  /// full materialization; other shapes materialize lazily on the first
  /// pull and stream the filter/delivery stages.
  Result<Cursor> Open(const Params& params = {}) const;
  Result<Cursor> Open(const Params& params,
                      std::optional<uint64_t> limit) const;

  /// The plan rendering of this prepared query (EXPLAIN format).
  Result<std::string> Explain() const;

 private:
  friend class Engine;
  PreparedQuery(const PropertyGraph& graph, EngineOptions options,
                std::shared_ptr<const planner::CachedPlan> plan,
                ParamSignature signature, bool cache_hit);

  const PropertyGraph* graph_;
  EngineOptions options_;
  std::shared_ptr<const planner::CachedPlan> plan_;
  ParamSignature signature_;
  bool cache_hit_;
  /// Wall clock of parsing the pattern text; 0 when prepared from an
  /// already-parsed pattern. Replayed into each execution's trace.
  double parse_ms_ = 0;
};

/// A pull-based result stream (docs/api.md): repeatedly call Next until it
/// returns false, or range-for over the cursor (iteration stops on error
/// or end of stream; check status() afterwards to distinguish). Rows are
/// byte-identical to the materializing execution's row sequence; `limit`
/// (from PreparedQuery::Open or a RETURN ... LIMIT clause) ends the stream
/// after that many rows, stopping matching early. Abandoning a cursor
/// mid-stream is safe and leaks nothing: the step/match budget is owned by
/// the cursor and dies with it.
class Cursor {
 public:
  Cursor(Cursor&&) = default;
  Cursor& operator=(Cursor&&) = default;
  Cursor(const Cursor&) = delete;
  Cursor& operator=(const Cursor&) = delete;

  /// Advances to the next row. Returns false at end of stream (clean
  /// completion, LIMIT, or flagged truncation); errors are sticky.
  Result<bool> Next(RowView* view);

  /// The compiled context rows are interpreted through (vars, normalized
  /// pattern, path variables, parameter bindings; rows stays empty).
  const MatchOutput& context() const { return context_; }

  /// Rows delivered so far.
  size_t rows_emitted() const { return emitted_; }

  /// True when the stream was cut short by an evaluation budget under
  /// BudgetPolicy::kTruncate — distinct from hit_limit().
  bool truncated() const { return truncated_; }

  /// True when the stream stopped because `limit` rows were delivered.
  bool hit_limit() const { return hit_limit_; }

  /// The sticky error that terminated the stream, or OK.
  const Status& status() const { return status_; }

  /// Materializes the remaining rows into a MatchOutput (the legacy
  /// Engine::Match shape); propagates stream errors.
  Result<MatchOutput> Drain();

  /// Input-iterator support for range-for. Iteration ends at end of stream
  /// or on error; check status() after the loop.
  class iterator {
   public:
    iterator() = default;
    explicit iterator(Cursor* c) : cursor_(c) { Advance(); }
    const RowView& operator*() const { return view_; }
    const RowView* operator->() const { return &view_; }
    iterator& operator++() {
      Advance();
      return *this;
    }
    bool operator==(const iterator& o) const { return cursor_ == o.cursor_; }
    bool operator!=(const iterator& o) const { return cursor_ != o.cursor_; }

   private:
    void Advance() {
      if (cursor_ == nullptr) return;
      Result<bool> more = cursor_->Next(&view_);
      if (!more.ok() || !*more) cursor_ = nullptr;
    }
    Cursor* cursor_ = nullptr;
    RowView view_;
  };
  iterator begin() { return iterator(this); }
  iterator end() { return iterator(); }

 private:
  friend class PreparedQuery;
  enum class Mode {
    kStream,  // Single fixed-length declaration: chunked seed-order
              // generation straight out of the matcher.
    kBatch,   // General shape: lazy materialization on first pull, then
              // streamed filtering/delivery.
  };

  Cursor(const PropertyGraph& graph, EngineOptions options,
         std::shared_ptr<const planner::CachedPlan> plan,
         std::shared_ptr<const Params> params, bool cache_hit,
         std::optional<uint64_t> limit, double parse_ms);

  /// Runs the next seed chunk (kStream) and stages its surviving rows.
  Status FillChunk();
  /// Runs the whole batch pipeline (kBatch) and stages surviving rows.
  Status FillBatch();
  /// One-shot observability publication when a kStream stream completes
  /// cleanly (end of seeds, LIMIT, or flagged truncation): registry
  /// counters/histograms, trace emission, slow-query capture. kBatch
  /// streams publish through ExecutePlan instead; errored or abandoned
  /// streams publish nothing (docs/observability.md).
  void FinishStream();
  /// Folds this stream into the query-stats store (kStream only; kBatch
  /// records through ExecutePlan). Called once — from FinishStream on
  /// clean completion, or from Next when the stream dies on an error, so
  /// unlike the metrics publication above, errored streams ARE counted
  /// (with the steps they spent before failing).
  void RecordStreamStats(bool error);

  const PropertyGraph* graph_;
  EngineOptions options_;
  std::shared_ptr<const planner::CachedPlan> plan_;
  bool cache_hit_ = false;
  Mode mode_ = Mode::kBatch;

  MatchOutput context_;  // rows empty; carries vars/normalized/params.
  std::optional<uint64_t> limit_;
  size_t emitted_ = 0;
  bool done_ = false;
  bool truncated_ = false;
  bool hit_limit_ = false;
  Status status_;
  ResultRow current_;  // Keeps the last-delivered row alive for RowView.

  // Staged surviving rows (one chunk in kStream; everything in kBatch).
  std::vector<ResultRow> staged_;
  size_t staged_pos_ = 0;
  bool batch_ran_ = false;

  // kStream state.
  std::vector<NodeId> seeds_;
  size_t seed_pos_ = 0;
  size_t chunk_size_ = 0;
  bool stream_reversed_ = false;
  bool stream_index_seeded_ = false;
  std::unique_ptr<SharedBudget> budget_;  // One budget across all chunks.

  // Observability accumulators (kStream; see FinishStream).
  double parse_ms_ = 0;
  uint64_t open_us_ = 0;      // Monotonic time of construction.
  double seed_ms_total_ = 0;  // ComputeSeeds + per-chunk seed derivation.
  double exec_ms_total_ = 0;  // RunPattern wall, summed over chunks.
  size_t seeds_total_ = 0;
  size_t steps_total_ = 0;
  size_t batch_blocks_total_ = 0;
  size_t batch_candidates_total_ = 0;
  size_t batch_survivors_total_ = 0;
  bool published_ = false;
  bool stats_recorded_ = false;  // RecordStreamStats fired (once ever).
};

/// The GPML processor of Figure 9: evaluates graph patterns over one
/// property graph. Both hosts (SQL/PGQ's GRAPH_TABLE and GQL sessions)
/// delegate here; the pre-projection semantics is identical in both, as the
/// paper requires.
///
/// The primary execution API is Prepare (once) + PreparedQuery::Execute /
/// Open (per parameter binding); Match is the legacy one-shot wrapper —
/// prepare, bind nothing, drain — kept as the differential oracle the
/// cursor paths are tested against.
class Engine {
 public:
  explicit Engine(const PropertyGraph& graph, EngineOptions options = {})
      : graph_(graph), options_(options) {}

  /// Prepares a query for repeated execution: parse (text form), normalize
  /// (§6.2), analyze (§4.4/§4.6/§4.7), termination-check (§5), plan,
  /// compile, and collect the $parameter signature — served from the
  /// graph's plan cache when an execution of the same parameterized text
  /// already paid for compilation.
  Result<PreparedQuery> Prepare(const std::string& match_text) const;
  Result<PreparedQuery> Prepare(const GraphPattern& pattern) const;

  /// Full pipeline from MATCH text: prepare, bind no parameters, match,
  /// join declarations on shared singletons, apply the final WHERE.
  /// Parameterized patterns fail here with a missing-parameter error; use
  /// Prepare + Execute to bind values.
  Result<MatchOutput> Match(const std::string& match_text) const;

  /// Same, starting from a parsed (unnormalized) pattern.
  Result<MatchOutput> Match(const GraphPattern& pattern) const;

  /// The execution plan the engine would use for this pattern: normalize,
  /// analyze, then run the statistics-driven planner (or the direct plan
  /// when use_planner is off).
  Result<planner::Plan> Plan(const GraphPattern& pattern) const;

  /// Human-readable EXPLAIN of the plan (see planner/explain.h for the
  /// format); both hosts surface this for EXPLAIN statements.
  Result<std::string> Explain(const std::string& match_text) const;
  Result<std::string> Explain(const GraphPattern& pattern) const;

  /// EXPLAIN ANALYZE: executes the pattern (with the given $parameter
  /// bindings) and renders the plan with per-declaration measured actuals —
  /// seeds, matcher steps, match-set sizes, index-vs-scan seeding — plus
  /// result rows, cache hit, and truncation on the exec line.
  Result<std::string> ExplainAnalyze(const std::string& match_text,
                                     const Params& params = {}) const;
  Result<std::string> ExplainAnalyze(const GraphPattern& pattern,
                                     const Params& params = {}) const;

  /// Runs the full diagnostic pipeline over query text without preparing a
  /// plan and without failing: parse errors surface as a single GPML-E001
  /// diagnostic, normalization/semantic/termination failures as GPML-E002
  /// (both carrying the error's byte offset when available), and otherwise
  /// the static analyzer's complete finding list — errors, warnings, and
  /// notes (docs/analysis.md). Render caret snippets with
  /// DiagnosticList::Render(match_text).
  analysis::DiagnosticList Lint(const std::string& match_text) const;

  const PropertyGraph& graph() const { return graph_; }
  const EngineOptions& options() const { return options_; }

  /// The worker count Match will actually use: options().num_threads, with
  /// 0 resolved to the hardware concurrency (at least 1).
  size_t ResolvedThreads() const;

 private:
  friend class PreparedQuery;
  friend class Cursor;

  /// The shared front half of Prepare/Plan/Explain: normalize (§6.2),
  /// analyze (§4.4/§4.6/§4.7), termination-check (§5), intern variables.
  struct Analyzed {
    GraphPattern normalized;
    std::shared_ptr<const VarTable> vars;
    /// The semantic per-variable facts, kept for the static analyzer
    /// (which needs VarInfo, not the interned VarTable).
    Analysis analysis;
  };
  Result<Analyzed> AnalyzePattern(const GraphPattern& pattern) const;

  /// Lint without the final span clamp (Lint bounds every span to the
  /// linted text before returning).
  analysis::DiagnosticList LintImpl(const std::string& match_text) const;

  Result<planner::Plan> PlanNormalized(const GraphPattern& normalized,
                                       const VarTable& vars) const;

  /// The compiled plan for `pattern`: served from the graph's plan cache
  /// when enabled (`*cache_hit` reports which), computed-and-published
  /// otherwise. The entry is immutable and shared with the cache.
  Result<std::shared_ptr<const planner::CachedPlan>> PreparePlan(
      const GraphPattern& pattern, bool* cache_hit) const;

  /// The materializing execution shared by Match, PreparedQuery::Execute,
  /// and ExplainAnalyze: per-declaration matching in plan order, the
  /// singleton hash join, declaration reordering, match-mode filter, and
  /// the final WHERE. `actuals`, when non-null, receives per-declaration
  /// measured counters in plan order (EXPLAIN ANALYZE). `parse_ms` is the
  /// already-paid text-parse cost replayed into the trace and plan_ms
  /// totals. Also the observability chokepoint: fills
  /// EngineOptions::trace, emits to trace_sink, publishes registry
  /// counters/histograms, and captures slow queries — for completed
  /// executions (failed ones publish nothing).
  Result<MatchOutput> ExecutePlan(
      const planner::CachedPlan& prepared, bool cache_hit,
      std::shared_ptr<const Params> params,
      std::vector<planner::DeclActual>* actuals, double parse_ms = 0) const;

  /// Matcher work observed by one ExecutePlan call, filled as the run
  /// progresses so the query-stats recorder sees the steps an execution
  /// spent even when it then died on an error (mirrors the cursor's
  /// record-before-status-check discipline in FillChunk).
  struct ExecObserved {
    size_t seeds = 0;
    size_t steps = 0;
    size_t batch_blocks = 0;
  };

  /// The body of ExecutePlan; the public wrapper times it and records the
  /// outcome — success or error — into the query-stats store.
  Result<MatchOutput> ExecutePlanImpl(
      const planner::CachedPlan& prepared, bool cache_hit,
      std::shared_ptr<const Params> params,
      std::vector<planner::DeclActual>* actuals, double parse_ms,
      ExecObserved* observed) const;

  const PropertyGraph& graph_;
  EngineOptions options_;
};

}  // namespace gpml

#endif  // GPML_EVAL_ENGINE_H_
