#include "obs/metrics.h"

#include <algorithm>
#include <set>

namespace gpml {
namespace obs {

namespace {

/// Process-wide list of live registries for AggregateAllRegistries. The
/// mutex is touched only on registry construction/destruction and on
/// aggregation — never on the metric hot path.
struct RegistryDirectory {
  std::mutex mu;
  std::set<const MetricsRegistry*> live;
};

RegistryDirectory& Directory() {
  static RegistryDirectory* dir = new RegistryDirectory();
  return *dir;
}

}  // namespace

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name) const {
  for (const GaugeSnapshot& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsRegistry::MetricsRegistry() {
  RegistryDirectory& dir = Directory();
  std::lock_guard<std::mutex> lock(dir.mu);
  dir.live.insert(this);
}

MetricsRegistry::~MetricsRegistry() {
  RegistryDirectory& dir = Directory();
  std::lock_guard<std::mutex> lock(dir.mu);
  dir.live.erase(this);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (histograms_.count(name) != 0 || gauges_.count(name) != 0) {
    return nullptr;  // Type mismatch.
  }
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || histograms_.count(name) != 0) {
    return nullptr;  // Type mismatch.
  }
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    return nullptr;  // Type mismatch.
  }
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      snap.counters.push_back({name, counter->value()});
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) {
      snap.gauges.push_back({name, gauge->value()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, hist] : histograms_) {
      HistogramSnapshot h;
      h.name = name;
      h.count = hist->count();
      h.sum_us = hist->sum_us();
      h.buckets.reserve(Histogram::kNumBounds + 1);
      for (size_t i = 0; i <= Histogram::kNumBounds; ++i) {
        h.buckets.push_back(hist->bucket(i));
      }
      snap.histograms.push_back(std::move(h));
    }
  }
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const CounterSnapshot& a, const CounterSnapshot& b) {
              return a.name < b.name;
            });
  std::sort(snap.gauges.begin(), snap.gauges.end(),
            [](const GaugeSnapshot& a, const GaugeSnapshot& b) {
              return a.name < b.name;
            });
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

MetricsSnapshot AggregateAllRegistries() {
  std::vector<MetricsSnapshot> parts;
  {
    RegistryDirectory& dir = Directory();
    std::lock_guard<std::mutex> lock(dir.mu);
    parts.reserve(dir.live.size());
    // Snapshotting under the directory lock keeps the registry set stable;
    // each per-registry snapshot takes that registry's own mutex briefly.
    for (const MetricsRegistry* r : dir.live) parts.push_back(r->Snapshot());
  }

  MetricsSnapshot out;
  for (MetricsSnapshot& part : parts) {
    for (CounterSnapshot& c : part.counters) {
      bool merged = false;
      for (CounterSnapshot& existing : out.counters) {
        if (existing.name == c.name) {
          existing.value += c.value;
          merged = true;
          break;
        }
      }
      if (!merged) out.counters.push_back(std::move(c));
    }
    for (GaugeSnapshot& g : part.gauges) {
      bool merged = false;
      for (GaugeSnapshot& existing : out.gauges) {
        if (existing.name == g.name) {
          existing.value += g.value;
          merged = true;
          break;
        }
      }
      if (!merged) out.gauges.push_back(std::move(g));
    }
    for (HistogramSnapshot& h : part.histograms) {
      bool merged = false;
      for (HistogramSnapshot& existing : out.histograms) {
        if (existing.name == h.name) {
          existing.count += h.count;
          existing.sum_us += h.sum_us;
          for (size_t i = 0;
               i < existing.buckets.size() && i < h.buckets.size(); ++i) {
            existing.buckets[i] += h.buckets[i];
          }
          merged = true;
          break;
        }
      }
      if (!merged) out.histograms.push_back(std::move(h));
    }
  }
  std::sort(out.counters.begin(), out.counters.end(),
            [](const CounterSnapshot& a, const CounterSnapshot& b) {
              return a.name < b.name;
            });
  std::sort(out.gauges.begin(), out.gauges.end(),
            [](const GaugeSnapshot& a, const GaugeSnapshot& b) {
              return a.name < b.name;
            });
  std::sort(out.histograms.begin(), out.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace obs
}  // namespace gpml
