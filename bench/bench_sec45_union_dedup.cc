// E10/E19 (§4.5): path pattern union vs multiset alternation — the
// deduplication ablation. The paper motivates |+| by the cost of set
// semantics; here the overlap-heavy union quantifies that cost.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace gpml {
namespace {

using bench::RunOrDie;

PropertyGraph& Cycle() {
  static PropertyGraph* g = new PropertyGraph(MakeCycleGraph(48));
  return *g;
}

void BM_Sec45_OverlappingUnion(benchmark::State& state) {
  // ->{1,5} | ->{3,7}: the overlap 3..5 is found twice, deduplicated.
  PropertyGraph& g = Cycle();
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunOrDie(g, "MATCH (a WHERE a.owner='u0')[->{1,5} | ->{3,7}](b)");
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Sec45_OverlappingUnion);

void BM_Sec45_OverlappingAlternation(benchmark::State& state) {
  PropertyGraph& g = Cycle();
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunOrDie(g,
                    "MATCH (a WHERE a.owner='u0')[->{1,5} |+| ->{3,7}](b)");
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Sec45_OverlappingAlternation);

void BM_Sec45_EquivalentSingleRange(benchmark::State& state) {
  // The compile-time rewrite the paper discusses: ->{1,7}.
  PropertyGraph& g = Cycle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunOrDie(g, "MATCH (a WHERE a.owner='u0')->{1,7}(b)"));
  }
}
BENCHMARK(BM_Sec45_EquivalentSingleRange);

void BM_Sec45_UnionFanout(benchmark::State& state) {
  // k-way union of label alternatives vs one label disjunction (§6.5's
  // equivalence): measures per-branch overhead.
  static PropertyGraph* g = new PropertyGraph(
      MakeRandomGraph(1000, 4000, 4, 0.0, 5));
  bool use_union = state.range(0) == 1;
  std::string query =
      use_union ? "MATCH (x)[-[:L0]->(y) | -[:L1]->(y) | -[:L2]->(y) | "
                  "-[:L3]->(y)]"
                : "MATCH (x)-[:L0|L1|L2|L3]->(y)";
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunOrDie(*g, query);
    benchmark::DoNotOptimize(rows);
  }
  state.SetLabel(use_union ? "union" : "label-disjunction");
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Sec45_UnionFanout)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace gpml
