#include "eval/nfa.h"

#include <sstream>

namespace gpml {

namespace {

class Compiler {
 public:
  explicit Compiler(const VarTable& vars) : vars_(vars) {}

  Result<Program> Compile(const PathPatternDecl& decl) {
    program_.selector = decl.selector;
    program_.root = decl.pattern;
    if (!decl.path_var.empty()) {
      program_.path_var = vars_.Find(decl.path_var);
    }

    int scope_id = -1;
    if (decl.restrictor != Restrictor::kNone) {
      scope_id = program_.num_scopes++;
      EmitScopeBegin(scope_id, decl.restrictor);
    }
    GPML_RETURN_IF_ERROR(CompilePath(*decl.pattern));
    if (scope_id >= 0) EmitScopeEnd(scope_id);
    Emit(Instr::Op::kAccept);

    program_.start = 0;
    return std::move(program_);
  }

 private:
  int Emit(Instr::Op op) {
    Instr i;
    i.op = op;
    i.depth = depth_;
    i.next = static_cast<int>(program_.code.size()) + 1;
    program_.code.push_back(std::move(i));
    return static_cast<int>(program_.code.size()) - 1;
  }
  Instr& At(int pc) { return program_.code[static_cast<size_t>(pc)]; }
  int Here() const { return static_cast<int>(program_.code.size()); }

  void EmitScopeBegin(int id, Restrictor r) {
    int pc = Emit(Instr::Op::kScopeBegin);
    At(pc).scope_id = id;
    At(pc).restrictor = r;
  }
  void EmitScopeEnd(int id) {
    int pc = Emit(Instr::Op::kScopeEnd);
    At(pc).scope_id = id;
  }

  Status CompilePath(const PathPattern& p) {
    switch (p.kind) {
      case PathPattern::Kind::kConcat:
        for (const PathElement& e : p.elements) {
          GPML_RETURN_IF_ERROR(CompileElement(e));
        }
        return Status::OK();
      case PathPattern::Kind::kUnion:
      case PathPattern::Kind::kAlternation:
        return CompileAlternatives(p);
    }
    return Status::Internal("unknown path pattern kind");
  }

  Status CompileAlternatives(const PathPattern& p) {
    // Chain of splits; each alternative jumps to the common end. Multiset
    // alternation additionally tags each branch for provenance.
    bool tagged = p.kind == PathPattern::Kind::kAlternation;
    std::vector<int> jumps_to_end;
    std::vector<int> pending_split = {};
    for (size_t i = 0; i < p.alternatives.size(); ++i) {
      bool last = i + 1 == p.alternatives.size();
      int split_pc = -1;
      if (!last) split_pc = Emit(Instr::Op::kSplit);
      if (tagged) {
        int t = Emit(Instr::Op::kTag);
        At(t).tag = next_tag_++;
      }
      GPML_RETURN_IF_ERROR(CompilePath(*p.alternatives[i]));
      if (!last) {
        jumps_to_end.push_back(Emit(Instr::Op::kJump));
        At(split_pc).alt = Here();
      }
    }
    for (int pc : jumps_to_end) At(pc).next = Here();
    (void)pending_split;
    return Status::OK();
  }

  Status CompileElement(const PathElement& e) {
    switch (e.kind) {
      case PathElement::Kind::kNode: {
        int id = vars_.Find(e.node.var);
        if (id < 0) return Status::Internal("unresolved node variable");
        int pc = Emit(Instr::Op::kNodeCheck);
        At(pc).node = &e.node;
        At(pc).var = id;
        return Status::OK();
      }
      case PathElement::Kind::kEdge: {
        int id = vars_.Find(e.edge.var);
        if (id < 0) return Status::Internal("unresolved edge variable");
        int pc = Emit(Instr::Op::kEdgeStep);
        At(pc).edge = &e.edge;
        At(pc).var = id;
        return Status::OK();
      }
      case PathElement::Kind::kParen:
        return CompileSegment(*e.sub, e.restrictor, e.where,
                              /*iteration=*/false, /*guard=*/false);
      case PathElement::Kind::kOptional: {
        // `?`: fork around the body. Conditional-variable semantics are a
        // static property (analysis); operationally this is {0,1}.
        int split_pc = Emit(Instr::Op::kSplit);
        GPML_RETURN_IF_ERROR(CompileSegment(*e.sub, e.restrictor, e.where,
                                            /*iteration=*/false,
                                            /*guard=*/false));
        At(split_pc).alt = Here();
        return Status::OK();
      }
      case PathElement::Kind::kQuantified:
        return CompileQuantified(e);
    }
    return Status::Internal("unknown path element kind");
  }

  /// Compiles one body occurrence: [scope [frame body where-check]] with
  /// iteration frames bumping serials and guarded frames requiring edge
  /// progress (prevents zero-width loops from spinning, see DESIGN.md).
  Status CompileSegment(const PathPattern& sub, Restrictor r, ExprPtr where,
                        bool iteration, bool guard) {
    int scope_id = -1;
    if (r != Restrictor::kNone) {
      scope_id = program_.num_scopes++;
      EmitScopeBegin(scope_id, r);
    }
    bool need_frame = iteration || where != nullptr;
    if (need_frame) {
      int pc = Emit(Instr::Op::kFrameBegin);
      At(pc).quant_frame = iteration;
    }
    if (iteration) {
      ++depth_;
      program_.max_depth = std::max(program_.max_depth, depth_);
    }
    GPML_RETURN_IF_ERROR(CompilePath(sub));
    if (where != nullptr) {
      int pc = Emit(Instr::Op::kWhereCheck);
      At(pc).where = where;
    }
    if (iteration) --depth_;
    if (need_frame) {
      int pc = Emit(Instr::Op::kFrameEnd);
      At(pc).guard_progress = guard;
    }
    if (scope_id >= 0) EmitScopeEnd(scope_id);
    return Status::OK();
  }

  Status CompileQuantified(const PathElement& e) {
    // min mandatory copies.
    for (uint64_t i = 0; i < e.min; ++i) {
      GPML_RETURN_IF_ERROR(CompileSegment(*e.sub, e.restrictor, e.where,
                                          /*iteration=*/true,
                                          /*guard=*/false));
    }
    if (e.max.has_value()) {
      // (max - min) optional copies, each skippable to the end.
      std::vector<int> skip_splits;
      for (uint64_t i = e.min; i < *e.max; ++i) {
        skip_splits.push_back(Emit(Instr::Op::kSplit));
        GPML_RETURN_IF_ERROR(CompileSegment(*e.sub, e.restrictor, e.where,
                                            /*iteration=*/true,
                                            /*guard=*/false));
      }
      for (int pc : skip_splits) At(pc).alt = Here();
      return Status::OK();
    }
    // Unbounded tail: guarded loop.
    program_.has_unbounded = true;
    int loop_head = Emit(Instr::Op::kSplit);  // next: body, alt: exit.
    GPML_RETURN_IF_ERROR(CompileSegment(*e.sub, e.restrictor, e.where,
                                        /*iteration=*/true, /*guard=*/true));
    int back = Emit(Instr::Op::kJump);
    At(back).next = loop_head;
    At(loop_head).alt = Here();
    return Status::OK();
  }

  const VarTable& vars_;
  Program program_;
  int depth_ = 0;
  int32_t next_tag_ = 1;
};

const char* OpName(Instr::Op op) {
  switch (op) {
    case Instr::Op::kNodeCheck: return "node";
    case Instr::Op::kEdgeStep: return "edge";
    case Instr::Op::kSplit: return "split";
    case Instr::Op::kJump: return "jump";
    case Instr::Op::kFrameBegin: return "frame+";
    case Instr::Op::kWhereCheck: return "where?";
    case Instr::Op::kFrameEnd: return "frame-";
    case Instr::Op::kScopeBegin: return "scope+";
    case Instr::Op::kScopeEnd: return "scope-";
    case Instr::Op::kTag: return "tag";
    case Instr::Op::kAccept: return "accept";
  }
  return "?";
}

}  // namespace

std::string Program::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < code.size(); ++i) {
    const Instr& in = code[i];
    os << i << ": " << OpName(in.op);
    if (in.op == Instr::Op::kSplit) os << " -> " << in.next << "|" << in.alt;
    else if (in.op == Instr::Op::kJump) os << " -> " << in.next;
    if (in.var >= 0) os << " var=" << in.var;
    if (in.scope_id >= 0) os << " scope=" << in.scope_id;
    if (in.where != nullptr) os << " [" << in.where->ToString() << "]";
    os << "\n";
  }
  return os.str();
}

Result<Program> CompilePattern(const PathPatternDecl& decl,
                               const VarTable& vars) {
  Compiler c(vars);
  return c.Compile(decl);
}

namespace {

/// Builds the block-at-a-time plan (see BatchPlan in nfa.h): verifies the
/// linear `NodeCheck (EdgeStep NodeCheck)* Accept` shape, compiles every
/// inline WHERE into a PredicateKernel, resolves implicit equi-join targets
/// to their first binding occurrence, and hoists label checks that the
/// equi-join already implies. Any program outside the shape (or with a
/// non-kernel WHERE) yields an ineligible plan and the scalar interpreter
/// runs instead.
std::shared_ptr<const BatchPlan> BuildBatchPlan(const Program& program,
                                                const PropertyGraph& g,
                                                const VarTable& vars) {
  auto plan = std::make_shared<BatchPlan>();
  if (!program.selector.IsNone()) return plan;

  size_t pc = static_cast<size_t>(program.start);
  bool expect_node = true;
  while (true) {
    if (pc >= program.code.size()) return plan;
    const Instr& in = program.code[pc];
    if (expect_node) {
      if (in.op != Instr::Op::kNodeCheck) return plan;
      BatchPlan::NodeStep ns;
      ns.pc = static_cast<int>(pc);
      ns.var = in.var;
      if (in.node->where != nullptr) {
        ns.has_kernel = true;
        if (!PredicateKernel::Compile(*in.node->where, in.var, vars,
                                      g.property_symbols(), &ns.kernel)) {
          return plan;
        }
      }
      plan->nodes.push_back(std::move(ns));
      expect_node = false;
    } else {
      if (in.op == Instr::Op::kAccept) break;
      if (in.op != Instr::Op::kEdgeStep) return plan;
      BatchPlan::EdgeStep es;
      es.pc = static_cast<int>(pc);
      es.var = in.var;
      if (in.edge->where != nullptr) {
        es.has_kernel = true;
        if (!PredicateKernel::Compile(*in.edge->where, in.var, vars,
                                      g.property_symbols(), &es.kernel)) {
          return plan;
        }
      }
      plan->edges.push_back(std::move(es));
      expect_node = true;
    }
    if (in.next != static_cast<int>(pc) + 1) return plan;  // Linear only.
    ++pc;
  }

  // Equi-join targets: the first occurrence of each named variable is the
  // one the scalar environment binds; later occurrences compare against it
  // (serials are all 0 in frame-free programs). Anonymous variables never
  // join (the scalar path skips the environment for them too).
  for (size_t i = 0; i < plan->nodes.size(); ++i) {
    BatchPlan::NodeStep& ns = plan->nodes[i];
    if (vars.info(ns.var).anonymous) continue;
    for (size_t j = 0; j < i; ++j) {
      if (plan->nodes[j].var == ns.var) {
        ns.eq_pos = static_cast<int>(j);
        break;
      }
    }
    if (ns.eq_pos < 0) continue;
    const LabelExprPtr& mine =
        program.code[static_cast<size_t>(ns.pc)].node->labels;
    const LabelExprPtr& theirs =
        program.code[static_cast<size_t>(
                         plan->nodes[static_cast<size_t>(ns.eq_pos)].pc)]
            .node->labels;
    // Bind-time label hoist: a re-visit joined to an identical-label
    // occurrence already passed this label check when it was first bound.
    ns.label_implied =
        mine == nullptr ||
        (theirs != nullptr && mine->ToString() == theirs->ToString());
  }
  for (size_t i = 0; i < plan->edges.size(); ++i) {
    BatchPlan::EdgeStep& es = plan->edges[i];
    if (vars.info(es.var).anonymous) continue;
    for (size_t j = 0; j < i; ++j) {
      if (plan->edges[j].var == es.var) {
        es.eq_pos = static_cast<int>(j);
        break;
      }
    }
  }

  // A variable shared across kinds (node and edge) runs the scalar
  // element-equality join (which always fails on mixed kinds); keep such
  // degenerate patterns off the batch path rather than modelling them.
  for (const BatchPlan::NodeStep& ns : plan->nodes) {
    if (vars.info(ns.var).anonymous) continue;
    for (const BatchPlan::EdgeStep& es : plan->edges) {
      if (es.var == ns.var) return plan;  // `eligible` stays false.
    }
  }

  plan->eligible = !plan->nodes.empty();
  return plan;
}

}  // namespace

void BindProgramToGraph(Program* program, const PropertyGraph& g,
                        const VarTable* vars) {
  const SymbolTable& labels = g.label_symbols();
  const bool use_bits = g.label_bits_usable();
  program->label_preds.clear();

  auto add_pred = [&](const LabelExprPtr& expr) {
    program->label_preds.push_back(
        CompiledLabelPred::Compile(expr, labels, use_bits));
    return static_cast<int>(program->label_preds.size()) - 1;
  };

  for (Instr& in : program->code) {
    in.lpred = -1;
    in.edge_label_sym = kNoLabelPartition;
    in.edge_prefiltered = false;
    if (in.op == Instr::Op::kNodeCheck && in.node->labels != nullptr) {
      in.lpred = add_pred(in.node->labels);
    }
    if (in.op != Instr::Op::kEdgeStep || in.edge->labels == nullptr) continue;
    in.lpred = add_pred(in.edge->labels);

    // Partition choice: a plain name scans exactly its bucket (membership
    // implies the match, no per-edge re-check); any other expression with
    // required conjuncts scans the globally rarest conjunct's bucket and
    // re-checks the compiled predicate per record.
    const LabelExpr& expr = *in.edge->labels;
    if (expr.kind == LabelExpr::Kind::kName) {
      in.edge_label_sym = labels.Find(expr.name);  // kInvalidSymbol = empty.
      in.edge_prefiltered = true;
      continue;
    }
    std::vector<const std::string*> required;
    expr.CollectRequiredNames(&required);
    if (required.empty()) continue;
    Symbol best = kNoLabelPartition;
    size_t best_count = 0;
    for (const std::string* name : required) {
      Symbol s = labels.Find(*name);
      if (s == kInvalidSymbol) {
        // A required label the graph never uses: nothing can match.
        best = kInvalidSymbol;
        break;
      }
      size_t count = g.EdgesWithLabel(*name).size();
      if (best == kNoLabelPartition || count < best_count) {
        best = s;
        best_count = count;
      }
    }
    in.edge_label_sym = best;
  }

  // Batch eligibility + kernel compilation. Derived data only — both the
  // scalar and the vectorized matcher run the same bound program; without a
  // variable table (tests binding raw programs) the batch path stays off.
  program->batch =
      vars != nullptr ? BuildBatchPlan(*program, g, *vars) : nullptr;
}

}  // namespace gpml
