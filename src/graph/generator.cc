#include "graph/generator.h"

#include <random>
#include <string>

#include "graph/graph_builder.h"

namespace gpml {

namespace {

constexpr int64_t kMillion = 1'000'000;

std::string N(int i) { return "v" + std::to_string(i); }

void AddAccountNode(GraphBuilder* b, const std::string& name, int i,
                    bool blocked) {
  b->AddNode(name, {"Account"},
             {{"owner", Value::String("u" + std::to_string(i))},
              {"isBlocked", Value::String(blocked ? "yes" : "no")}});
}

void AddTransfer(GraphBuilder* b, int edge_index, const std::string& from,
                 const std::string& to, int64_t amount) {
  b->AddDirectedEdge("t" + std::to_string(edge_index), from, to, {"Transfer"},
                     {{"amount", Value::Int(amount)},
                      {"date", Value::String("1/1/2020")}});
}

}  // namespace

PropertyGraph MakeChainGraph(int n) {
  GraphBuilder b;
  for (int i = 0; i < n; ++i) AddAccountNode(&b, N(i), i, false);
  for (int i = 0; i + 1 < n; ++i) {
    AddTransfer(&b, i, N(i), N(i + 1), (i % 2 == 0 ? 10 : 4) * kMillion);
  }
  return std::move(b).Build().value();
}

PropertyGraph MakeCycleGraph(int n) {
  GraphBuilder b;
  for (int i = 0; i < n; ++i) AddAccountNode(&b, N(i), i, false);
  for (int i = 0; i < n; ++i) {
    AddTransfer(&b, i, N(i), N((i + 1) % n), (i % 2 == 0 ? 10 : 4) * kMillion);
  }
  return std::move(b).Build().value();
}

PropertyGraph MakeCompleteGraph(int n) {
  GraphBuilder b;
  for (int i = 0; i < n; ++i) AddAccountNode(&b, N(i), i, false);
  int e = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      AddTransfer(&b, e++, N(i), N(j), 10 * kMillion);
    }
  }
  return std::move(b).Build().value();
}

PropertyGraph MakeDiamondChain(int k) {
  GraphBuilder b;
  // Nodes: s0, then per diamond i: top ti, bottom bi, join s(i+1). Owners
  // equal the node names so tests/benches can anchor on them.
  auto add = [&b](const std::string& name) {
    b.AddNode(name, {"Account"},
              {{"owner", Value::String(name)},
               {"isBlocked", Value::String("no")}});
  };
  add("s0");
  int e = 0;
  for (int i = 0; i < k; ++i) {
    std::string s = "s" + std::to_string(i);
    std::string t = "top" + std::to_string(i);
    std::string bo = "bot" + std::to_string(i);
    std::string nxt = "s" + std::to_string(i + 1);
    add(t);
    add(bo);
    add(nxt);
    AddTransfer(&b, e++, s, t, 10 * kMillion);
    AddTransfer(&b, e++, t, nxt, 10 * kMillion);
    AddTransfer(&b, e++, s, bo, 10 * kMillion);
    AddTransfer(&b, e++, bo, nxt, 10 * kMillion);
  }
  return std::move(b).Build().value();
}

PropertyGraph MakeGridGraph(int w, int h) {
  GraphBuilder b;
  auto name = [&](int x, int y) {
    return "g" + std::to_string(x) + "_" + std::to_string(y);
  };
  int i = 0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) AddAccountNode(&b, name(x, y), i++, false);
  }
  int e = 0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) AddTransfer(&b, e++, name(x, y), name(x + 1, y),
                                 10 * kMillion);
      if (y + 1 < h) AddTransfer(&b, e++, name(x, y), name(x, y + 1),
                                 10 * kMillion);
    }
  }
  return std::move(b).Build().value();
}

PropertyGraph MakeFraudGraph(const FraudGraphOptions& options) {
  GraphBuilder b;
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  const int num_accounts = options.num_accounts;
  for (int i = 0; i < num_accounts; ++i) {
    AddAccountNode(&b, "a" + std::to_string(i), i,
                   unit(rng) < options.blocked_fraction);
  }
  for (int c = 0; c < options.num_cities; ++c) {
    b.AddNode("c" + std::to_string(c), {"City", "Country"},
              {{"name", Value::String(c == 0 ? "Ankh-Morpork"
                                             : "City" + std::to_string(c))}});
  }
  const int num_phones =
      std::max(1, num_accounts * options.num_phones_per_100 / 100);
  for (int p = 0; p < num_phones; ++p) {
    b.AddNode("p" + std::to_string(p), {"Phone"},
              {{"number", Value::Int(p)},
               {"isBlocked", Value::String(unit(rng) < 0.05 ? "yes" : "no")}});
  }
  const int num_ips = std::max(1, num_accounts / 4);
  for (int ip = 0; ip < num_ips; ++ip) {
    b.AddNode("ip" + std::to_string(ip), {"IP"},
              {{"number", Value::String("123." + std::to_string(ip))},
               {"isBlocked", Value::String("no")}});
  }

  std::uniform_int_distribution<int> acct(0, num_accounts - 1);
  std::uniform_int_distribution<int> city(0, options.num_cities - 1);
  std::uniform_int_distribution<int> phone(0, num_phones - 1);
  std::uniform_int_distribution<int> ip(0, num_ips - 1);
  std::uniform_int_distribution<int> millions(1, 12);
  std::uniform_int_distribution<int> month(1, 12);

  int e = 0;
  const int num_transfers = num_accounts * options.transfers_per_account;
  for (int t = 0; t < num_transfers; ++t) {
    int from = acct(rng);
    int to = acct(rng);
    b.AddDirectedEdge(
        "t" + std::to_string(e++), "a" + std::to_string(from),
        "a" + std::to_string(to), {"Transfer"},
        {{"amount", Value::Int(int64_t{1} * millions(rng) * kMillion)},
         {"date", Value::String(std::to_string(month(rng)) + "/1/2020")}});
  }
  for (int i = 0; i < num_accounts; ++i) {
    b.AddDirectedEdge("li" + std::to_string(i), "a" + std::to_string(i),
                      "c" + std::to_string(city(rng)), {"isLocatedIn"});
    b.AddUndirectedEdge("hp" + std::to_string(i), "a" + std::to_string(i),
                        "p" + std::to_string(phone(rng)), {"hasPhone"});
    if (unit(rng) < 0.5) {
      b.AddDirectedEdge("sip" + std::to_string(i), "a" + std::to_string(i),
                        "ip" + std::to_string(ip(rng)), {"signInWithIP"});
    }
  }
  return std::move(b).Build().value();
}

PropertyGraph MakeRandomGraph(int num_nodes, int num_edges, int num_labels,
                              double undirected_fraction, uint64_t seed) {
  GraphBuilder b;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> node(0, num_nodes - 1);
  std::uniform_int_distribution<int> label(0, std::max(0, num_labels - 1));
  std::uniform_int_distribution<int> weight(0, 99);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  for (int i = 0; i < num_nodes; ++i) {
    b.AddNode(N(i), {"L" + std::to_string(label(rng))},
              {{"w", Value::Int(weight(rng))}});
  }
  for (int e = 0; e < num_edges; ++e) {
    std::string from = N(node(rng));
    std::string to = N(node(rng));
    std::vector<std::string> labels = {"L" + std::to_string(label(rng))};
    PropertyList props = {{"w", Value::Int(weight(rng))}};
    if (unit(rng) < undirected_fraction) {
      b.AddUndirectedEdge("e" + std::to_string(e), from, to, labels, props);
    } else {
      b.AddDirectedEdge("e" + std::to_string(e), from, to, labels, props);
    }
  }
  return std::move(b).Build().value();
}

}  // namespace gpml
