// Tests for the statistics-driven planner: GraphStats collection and
// caching, cost-model estimates, anchor/direction selection on skewed
// graphs, seed-list restriction, and — most importantly — differential
// equality: the planner must never change results, only how they are found.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/engine.h"
#include "eval/reference_eval.h"
#include "graph/generator.h"
#include "graph/graph_builder.h"
#include "graph/sample_graph.h"
#include "parser/parser.h"
#include "planner/planner.h"
#include "planner/stats.h"
#include "semantics/normalize.h"
#include "tests/test_util.h"

namespace gpml {
namespace {

using planner::GraphStats;

EngineOptions PlannerOn() {
  EngineOptions o;
  o.use_planner = true;
  return o;
}

EngineOptions PlannerOff() {
  EngineOptions o;
  o.use_planner = false;
  return o;
}

/// A graph where the right end of (a:Src)-[:E]->(b:Dst) is far more
/// selective than the left: many sources funnel into two sinks.
PropertyGraph SkewedGraph(int sources = 40) {
  GraphBuilder b;
  b.AddNode("d1", {"Dst"});
  b.AddNode("d2", {"Dst"});
  for (int i = 0; i < sources; ++i) {
    std::string name = "s" + std::to_string(i);
    b.AddNode(name, {"Src"});
    b.AddDirectedEdge("e" + std::to_string(i), name, i % 2 ? "d1" : "d2",
                      {"E"});
  }
  Result<PropertyGraph> g = std::move(b).Build();
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

// --- GraphStats -------------------------------------------------------------

TEST(GraphStatsTest, PaperGraphCounts) {
  PropertyGraph g = BuildPaperGraph();
  GraphStats s = planner::ComputeStats(g);
  EXPECT_EQ(s.num_nodes, g.num_nodes());
  EXPECT_EQ(s.num_edges, g.num_edges());
  EXPECT_EQ(s.NodeLabelCount("Account"), 6u);
  EXPECT_EQ(s.NodeLabelCount("City"), 1u);      // c2 only.
  EXPECT_EQ(s.NodeLabelCount("Country"), 2u);   // c1 and c2.
  EXPECT_EQ(s.NodeLabelCount("Phone"), 4u);
  EXPECT_EQ(s.NodeLabelCount("Nope"), 0u);
  EXPECT_EQ(s.EdgeLabelCount("Transfer"), 8u);
  EXPECT_EQ(s.EdgeLabelCount("isLocatedIn"), 6u);
  EXPECT_EQ(s.EdgeLabelCount("hasPhone"), 6u);
  EXPECT_EQ(s.EdgeLabelCount("signInWithIP"), 2u);
  // Every node in the paper graph carries a label.
  EXPECT_EQ(s.num_labeled_nodes, g.num_nodes());
}

TEST(GraphStatsTest, LabelPathFrequencies) {
  PropertyGraph g = BuildPaperGraph();
  GraphStats s = planner::ComputeStats(g);
  // All 8 transfers run Account -> Account.
  EXPECT_EQ(s.LabelPathCount("Account", "Transfer", "Account"), 8u);
  EXPECT_EQ(s.LabelPathCount("Account", "Transfer", "City"), 0u);
  // a2, a4, a6 are located in c2 (City & Country): the label-combination
  // expansion counts the City and the Country combination separately.
  EXPECT_EQ(s.LabelPathCount("Account", "isLocatedIn", "City"), 3u);
  EXPECT_EQ(s.LabelPathCount("Account", "isLocatedIn", "Country"), 6u);
  // hasPhone is undirected: counted in both orders, and tracked in the
  // undirected split so orientation costing can exclude directed edges.
  EXPECT_EQ(s.LabelPathCount("Account", "hasPhone", "Phone"), 6u);
  EXPECT_EQ(s.LabelPathCount("Phone", "hasPhone", "Account"), 6u);
  EXPECT_EQ(s.UndirectedLabelPathCount("Account", "hasPhone", "Phone"), 6u);
  EXPECT_EQ(s.UndirectedLabelPathCount("Account", "Transfer", "Account"), 0u);
}

TEST(GraphStatsTest, DegreesOnSkewedGraph) {
  PropertyGraph g = SkewedGraph(40);
  GraphStats s = planner::ComputeStats(g);
  ASSERT_EQ(s.NodeLabelCount("Src"), 40u);
  ASSERT_EQ(s.NodeLabelCount("Dst"), 2u);
  const planner::LabelDegree& src = s.degree_by_label.at("Src");
  const planner::LabelDegree& dst = s.degree_by_label.at("Dst");
  EXPECT_DOUBLE_EQ(src.avg_out, 1.0);
  EXPECT_DOUBLE_EQ(src.avg_in, 0.0);
  EXPECT_DOUBLE_EQ(dst.avg_out, 0.0);
  EXPECT_DOUBLE_EQ(dst.avg_in, 20.0);
}

TEST(GraphStatsTest, CachedOnTheGraph) {
  PropertyGraph g = BuildPaperGraph();
  auto first = planner::GetStats(g);
  auto second = planner::GetStats(g);
  EXPECT_EQ(first.get(), second.get()) << "stats must be computed once";
  EXPECT_EQ(first->num_nodes, g.num_nodes());
}

// --- Cost model -------------------------------------------------------------

TEST(CostModelTest, LabelCardinalities) {
  PropertyGraph g = BuildPaperGraph();
  GraphStats s = planner::ComputeStats(g);
  double n = static_cast<double>(s.num_nodes);
  EXPECT_DOUBLE_EQ(planner::EstimateLabelCardinality(nullptr, s), n);
  EXPECT_DOUBLE_EQ(
      planner::EstimateLabelCardinality(LabelExpr::Name("Account"), s), 6.0);
  EXPECT_DOUBLE_EQ(planner::EstimateLabelCardinality(
                       LabelExpr::Or(LabelExpr::Name("Account"),
                                     LabelExpr::Name("Phone")),
                       s),
                   10.0);
  EXPECT_DOUBLE_EQ(planner::EstimateLabelCardinality(
                       LabelExpr::And(LabelExpr::Name("City"),
                                      LabelExpr::Name("Country")),
                       s),
                   1.0);
  EXPECT_DOUBLE_EQ(planner::EstimateLabelCardinality(
                       LabelExpr::Not(LabelExpr::Name("Account")), s),
                   n - 6.0);
  EXPECT_DOUBLE_EQ(
      planner::EstimateLabelCardinality(LabelExpr::Wildcard(), s), n);
}

TEST(CostModelTest, PredicateSelectivities) {
  planner::PlannerConfig config;
  auto eq = Expr::Binary(BinaryOp::kEq, Expr::Prop("x", "owner"),
                         Expr::Lit(Value::String("Jay")));
  auto lt = Expr::Binary(BinaryOp::kLt, Expr::Prop("x", "amount"),
                         Expr::Lit(Value::Int(5)));
  EXPECT_DOUBLE_EQ(planner::PredicateSelectivity(nullptr, config), 1.0);
  EXPECT_DOUBLE_EQ(planner::PredicateSelectivity(eq, config),
                   config.eq_selectivity);
  EXPECT_DOUBLE_EQ(planner::PredicateSelectivity(lt, config),
                   config.range_selectivity);
  EXPECT_DOUBLE_EQ(
      planner::PredicateSelectivity(Expr::Binary(BinaryOp::kAnd, eq, lt),
                                    config),
      config.eq_selectivity * config.range_selectivity);
}

TEST(CostModelTest, HistogramExactEqualitySelectivity) {
  // 10 Src nodes, kind: 3x 'a', 7x 'b'. With histograms wired the equality
  // estimate is the exact per-(label, key, value) bucket count from the
  // property seed index, not the System-R constant.
  GraphBuilder b;
  for (int i = 0; i < 10; ++i) {
    b.AddNode("s" + std::to_string(i), {"Src"},
              {{"kind", Value::String(i < 3 ? "a" : "b")}});
  }
  Result<PropertyGraph> g = std::move(b).Build();
  ASSERT_TRUE(g.ok());

  planner::PlannerConfig config;
  planner::SelectivityHints hints;
  hints.var = "x";
  hints.label = "Src";
  hints.label_count = 10;
  auto eq = Expr::Binary(BinaryOp::kEq, Expr::Prop("x", "kind"),
                         Expr::Lit(Value::String("a")));

  // Null histograms: the System-R constant, unchanged.
  EXPECT_DOUBLE_EQ(planner::PredicateSelectivity(eq, config, hints),
                   config.eq_selectivity);

  config.histograms = &*g;
  EXPECT_DOUBLE_EQ(planner::PredicateSelectivity(eq, config, hints), 0.3);

  // A value no node carries: exactly zero survivors, not 10%.
  auto miss = Expr::Binary(BinaryOp::kEq, Expr::Prop("x", "kind"),
                           Expr::Lit(Value::String("z")));
  EXPECT_DOUBLE_EQ(planner::PredicateSelectivity(miss, config, hints), 0.0);

  // Conjunctions resolve each equality conjunct exactly.
  auto both = Expr::Binary(BinaryOp::kAnd, eq, miss);
  EXPECT_DOUBLE_EQ(planner::PredicateSelectivity(both, config, hints), 0.0);

  // A different variable cannot be resolved against this endpoint's
  // histogram: System-R fallback.
  auto other = Expr::Binary(BinaryOp::kEq, Expr::Prop("y", "kind"),
                            Expr::Lit(Value::String("a")));
  EXPECT_DOUBLE_EQ(planner::PredicateSelectivity(other, config, hints),
                   config.eq_selectivity);

  // Range predicates keep the System-R constant even with histograms.
  auto lt = Expr::Binary(BinaryOp::kLt, Expr::Prop("x", "kind"),
                         Expr::Lit(Value::String("b")));
  EXPECT_DOUBLE_EQ(planner::PredicateSelectivity(lt, config, hints),
                   config.range_selectivity);
}

TEST(AnchorSelectionTest, HistogramSelectivityDrivesAnchorChoice) {
  // 100 Src nodes (95 kind='hot', 5 kind='cold') each with one E edge into
  // one of 10 Dst nodes. The System-R constant (10%) would call the 'hot'
  // endpoint selective (100 * 0.1 = 10 survivors < 10 Dst + fanout); the
  // exact histogram knows it keeps 95 nodes, so the planner anchors at the
  // Dst end instead. The 'cold' endpoint really is selective (5 nodes) and
  // stays the anchor, with its exact selectivity and bucket-sized seed
  // estimate surfaced in EXPLAIN.
  GraphBuilder b;
  for (int i = 0; i < 10; ++i) {
    b.AddNode("d" + std::to_string(i), {"Dst"});
  }
  for (int i = 0; i < 100; ++i) {
    std::string name = "s" + std::to_string(i);
    b.AddNode(name, {"Src"},
              {{"kind", Value::String(i < 95 ? "hot" : "cold")}});
    b.AddDirectedEdge("e" + std::to_string(i), name,
                      "d" + std::to_string(i % 10), {"E"});
  }
  Result<PropertyGraph> built = std::move(b).Build();
  ASSERT_TRUE(built.ok());
  PropertyGraph g = std::move(*built);
  Engine engine(g);

  Result<std::string> hot =
      engine.Explain("MATCH (a:Src WHERE a.kind='hot')-[:E]->(b:Dst)");
  ASSERT_TRUE(hot.ok()) << hot.status();
  Result<planner::ExplainedPlan> hot_plan = planner::ParseExplain(*hot);
  ASSERT_TRUE(hot_plan.ok()) << hot_plan.status() << "\n" << *hot;
  ASSERT_EQ(hot_plan->decls.size(), 1u);
  EXPECT_TRUE(hot_plan->decls[0].reversed)
      << "95/100 survivors must out-cost the 10-node Dst scan\n"
      << *hot;

  Result<std::string> cold =
      engine.Explain("MATCH (a:Src WHERE a.kind='cold')-[:E]->(b:Dst)");
  ASSERT_TRUE(cold.ok()) << cold.status();
  Result<planner::ExplainedPlan> cold_plan = planner::ParseExplain(*cold);
  ASSERT_TRUE(cold_plan.ok()) << cold_plan.status() << "\n" << *cold;
  ASSERT_EQ(cold_plan->decls.size(), 1u);
  const planner::ExplainedDecl& anchor = cold_plan->decls[0];
  EXPECT_FALSE(anchor.reversed) << *cold;
  EXPECT_EQ(anchor.var, "a") << *cold;
  EXPECT_DOUBLE_EQ(anchor.selectivity, 0.05) << *cold;
  // Index-backed seeding caps the seed estimate at the exact bucket size.
  EXPECT_DOUBLE_EQ(anchor.seeds, 5.0) << *cold;
  EXPECT_EQ(anchor.source, "index:Src.kind") << *cold;
}

// --- Anchor / direction selection -------------------------------------------

Result<planner::Plan> PlanFor(const PropertyGraph& g, const std::string& query,
                              EngineOptions options = PlannerOn()) {
  Engine engine(g, options);
  Result<GraphPattern> pattern = ParseGraphPattern(query);
  EXPECT_TRUE(pattern.ok()) << pattern.status();
  return engine.Plan(*pattern);
}

TEST(AnchorSelectionTest, ReversesTowardSelectiveEnd) {
  PropertyGraph g = SkewedGraph(40);
  Result<planner::Plan> plan = PlanFor(g, "MATCH (a:Src)-[:E]->(b:Dst)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->decls.size(), 1u);
  EXPECT_TRUE(plan->decls[0].reversed)
      << "2 Dst seeds must beat 40 Src seeds";
  EXPECT_EQ(plan->decls[0].anchor.label, "Dst");
}

TEST(AnchorSelectionTest, KeepsWrittenDirectionWhenLeftIsSelective) {
  PropertyGraph g = SkewedGraph(40);
  Result<planner::Plan> plan = PlanFor(g, "MATCH (b:Dst)<-[:E]-(a:Src)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(plan->decls[0].reversed);
  EXPECT_EQ(plan->decls[0].anchor.label, "Dst");
}

TEST(AnchorSelectionTest, NondeterministicSelectorIsNotReversed) {
  PropertyGraph g = SkewedGraph(40);
  Result<planner::Plan> plan =
      PlanFor(g, "MATCH ANY (a:Src)-[:E]->+(b:Dst)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(plan->decls[0].reversed)
      << "ANY picks direction-dependent witnesses; reversal must be gated";
}

TEST(AnchorSelectionTest, CrossElementPredicateIsNotReversed) {
  PropertyGraph g = SkewedGraph(40);
  // b's predicate references a: in the mirrored order it would be evaluated
  // before a is bound.
  Result<planner::Plan> plan = PlanFor(
      g, "MATCH (a:Src)-[:E]->(b:Dst WHERE a.owner = b.owner)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(plan->decls[0].reversed);
}

TEST(AnchorSelectionTest, DeterministicSelectorMayReverse) {
  PropertyGraph g = SkewedGraph(40);
  Result<planner::Plan> plan =
      PlanFor(g, "MATCH ALL SHORTEST (a:Src)-[:E]->+(b:Dst)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->decls[0].reversed);
}

TEST(AnchorSelectionTest, PlannerOffNeverReverses) {
  PropertyGraph g = SkewedGraph(40);
  Result<planner::Plan> plan =
      PlanFor(g, "MATCH (a:Src)-[:E]->(b:Dst)", PlannerOff());
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(plan->planner_used);
  EXPECT_FALSE(plan->decls[0].reversed);
}

TEST(PatternMirrorTest, DoubleReversalIsIdentity) {
  Result<GraphPattern> parsed = ParseGraphPattern(
      "MATCH (a:Src WHERE a.x = 1)<~[e:E|F]~[(c)-[:G]->(d)]{1,3}(b:Dst)");
  ASSERT_TRUE(parsed.ok());
  Result<GraphPattern> normalized = Normalize(*parsed);
  ASSERT_TRUE(normalized.ok());
  const PathPatternPtr& p = normalized->paths[0].pattern;
  PathPatternPtr twice =
      planner::ReversePathPattern(planner::ReversePathPattern(p));
  // Structural spot checks: same element count and same endpoints.
  ASSERT_EQ(twice->kind, p->kind);
  ASSERT_EQ(twice->elements.size(), p->elements.size());
  EXPECT_EQ(planner::FirstNodeOf(*twice)->var, planner::FirstNodeOf(*p)->var);
  EXPECT_EQ(planner::LastNodeOf(*twice)->var, planner::LastNodeOf(*p)->var);
  for (size_t i = 0; i < p->elements.size(); ++i) {
    EXPECT_EQ(twice->elements[i].kind, p->elements[i].kind);
    if (p->elements[i].kind == PathElement::Kind::kEdge) {
      EXPECT_EQ(twice->elements[i].edge.orientation,
                p->elements[i].edge.orientation);
    }
  }
}

// --- Join ordering and seed restriction -------------------------------------

TEST(JoinOrderTest, SelectiveDeclRunsFirst) {
  PropertyGraph g = BuildPaperGraph();
  // As written, the expensive unanchored reachability decl comes first; the
  // planner must run the selective co-location decl first and then seed the
  // chain from the bound x values.
  Result<planner::Plan> plan = PlanFor(
      g,
      "MATCH ANY (x)-[:Transfer]->+(y), "
      "(x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->(c:City)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->decls.size(), 2u);
  EXPECT_EQ(plan->decls[0].decl_index, 1);
  EXPECT_EQ(plan->decls[1].decl_index, 0);
  EXPECT_EQ(plan->decls[1].seed_bound_var,
            plan->decls[1].anchor_var);
  ASSERT_GE(plan->decls[1].seed_bound_var, 0);
}

TEST(JoinOrderTest, SeedRestrictionShrinksSeededNodes) {
  PropertyGraph g = BuildPaperGraph();
  const std::string query =
      "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
      "(c:City WHERE c.name='Ankh-Morpork')<-[:isLocatedIn]-"
      "(y:Account WHERE y.isBlocked='yes'), "
      "ANY (x)-[:Transfer]->+(y)";

  EngineMetrics on_metrics, off_metrics;
  EngineOptions on = PlannerOn();
  on.metrics = &on_metrics;
  EngineOptions off = PlannerOff();
  off.metrics = &off_metrics;

  Engine e_on(g, on);
  ASSERT_TRUE(e_on.Match(query).ok());
  Engine e_off(g, off);
  ASSERT_TRUE(e_off.Match(query).ok());
  EXPECT_GE(on_metrics.seed_filtered_decls, 1u);
  EXPECT_LT(on_metrics.seeded_nodes, off_metrics.seeded_nodes);
  EXPECT_LT(on_metrics.matcher_steps, off_metrics.matcher_steps);
  // And identical results.
  EXPECT_EQ(testing_util::Rows(g, query, "x, y", on),
            testing_util::Rows(g, query, "x, y", off));
}

// --- Differential: planner on == planner off == reference -------------------

const char* kDifferentialQueries[] = {
    "MATCH (x:Account)-[t:Transfer]->(y:Account)",
    "MATCH (x)-[t:Transfer]->(y:Account WHERE y.owner='Jay')",
    "MATCH p = (x:Account WHERE x.isBlocked='no')-[:Transfer]->"
    "(y:Account WHERE y.isBlocked='yes')",
    "MATCH (x:Account)-[:isLocatedIn]->(c:City)",
    "MATCH TRAIL (x:Account)-[:Transfer]->{1,3}(y:Account)",
    "MATCH ACYCLIC (x)-[:Transfer]->+(y:Account WHERE y.owner='Dave')",
    "MATCH ALL SHORTEST (x:Account)-[:Transfer]->+(y:Account "
    "WHERE y.owner='Mike')",
    "MATCH (x:Account)[-[:Transfer]->(z) | <-[:Transfer]-(z)](y)",
    "MATCH (a:Account)~[:hasPhone]~(p:Phone)~[:hasPhone]~(b:Account "
    "WHERE b.owner='Scott')",
    "MATCH (x:Account)-[:Transfer]->(y)-[:Transfer]->"
    "(z:Account WHERE z.isBlocked='yes')",
    "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->(c:City)"
    "<-[:isLocatedIn]-(y:Account WHERE y.isBlocked='yes'), "
    "ANY (x)-[:Transfer]->+(y)",
    "MATCH ACYCLIC (x)-[:Transfer]->+(y), (x:Account WHERE x.owner='Aretha')",
    "MATCH DIFFERENT EDGES (x)-[:Transfer]->(y), (y)-[:Transfer]->(z)",
    "MATCH (x:Account) [-[:Transfer]->(y:Account)]? WHERE x.owner <> 'Jay'",
};

/// Canonical rendering of full result rows (all bindings, sorted).
std::vector<std::string> CanonRows(const PropertyGraph& g,
                                   const std::string& query,
                                   const EngineOptions& options) {
  Engine engine(g, options);
  Result<MatchOutput> out = engine.Match(query);
  if (!out.ok()) return {"ERROR: " + out.status().ToString()};
  std::vector<std::string> rows;
  rows.reserve(out->rows.size());
  for (const ResultRow& row : out->rows) {
    std::string s;
    for (const auto& pb : row.bindings) {
      s += pb->ToString(g, *out->vars) + " ; ";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(PlannerDifferentialTest, PaperGraph) {
  PropertyGraph g = BuildPaperGraph();
  for (const char* query : kDifferentialQueries) {
    std::vector<std::string> on = CanonRows(g, query, PlannerOn());
    ASSERT_TRUE(on.empty() || on[0].rfind("ERROR:", 0) != 0)
        << query << " -> " << on[0];
    EXPECT_EQ(on, CanonRows(g, query, PlannerOff())) << query;
  }
}

TEST(PlannerDifferentialTest, RandomGraphs) {
  const char* queries[] = {
      "MATCH (x:L0)-[:L1]->(y:L1)",
      "MATCH (x:L0)-[e]->(y:L2 WHERE y.w < 40)",
      "MATCH TRAIL (x:L0)-[:L0]->{1,2}(y)",
      "MATCH ALL SHORTEST (x:L0)-[:L1]->+(y:L2)",
      "MATCH (x:L0)-[:L1]->(y), (y)-[:L2]->(z:L2)",
  };
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    PropertyGraph g = MakeRandomGraph(24, 60, 3, 0.25, seed);
    for (const char* query : queries) {
      EXPECT_EQ(CanonRows(g, query, PlannerOn()),
                CanonRows(g, query, PlannerOff()))
          << "seed " << seed << ": " << query;
    }
  }
}

TEST(PlannerDifferentialTest, AgainstReferenceEvaluator) {
  PropertyGraph g = BuildPaperGraph();
  const char* queries[] = {
      "MATCH (x)-[t:Transfer]->(y:Account WHERE y.owner='Jay')",
      "MATCH ACYCLIC (x)-[:Transfer]->+(y:Account WHERE y.owner='Dave')",
      "MATCH ALL SHORTEST (x:Account)-[:Transfer]->+(y:Account "
      "WHERE y.owner='Mike')",
  };
  for (const char* query : queries) {
    Result<GraphPattern> parsed = ParseGraphPattern(query);
    ASSERT_TRUE(parsed.ok());
    Result<GraphPattern> normalized = Normalize(*parsed);
    ASSERT_TRUE(normalized.ok());
    Result<Analysis> analysis = Analyze(*normalized);
    ASSERT_TRUE(analysis.ok());
    VarTable vars(*analysis);
    Result<MatchSet> ref =
        RunReference(g, normalized->paths[0], vars, ReferenceOptions{});
    ASSERT_TRUE(ref.ok()) << query << " -> " << ref.status();
    std::vector<std::string> ref_rows;
    for (const PathBinding& pb : ref->bindings) {
      ref_rows.push_back(pb.ToString(g, vars));
    }
    std::sort(ref_rows.begin(), ref_rows.end());

    Engine engine(g, PlannerOn());
    Result<MatchOutput> out = engine.Match(query);
    ASSERT_TRUE(out.ok()) << query << " -> " << out.status();
    std::vector<std::string> engine_rows;
    for (const ResultRow& row : out->rows) {
      engine_rows.push_back(row.bindings[0]->ToString(g, *out->vars));
    }
    std::sort(engine_rows.begin(), engine_rows.end());
    EXPECT_EQ(engine_rows, ref_rows) << query;
  }
}

}  // namespace
}  // namespace gpml
