#include "semantics/normalize.h"

namespace gpml {

namespace {

/// Rewrites one graph pattern; carries the fresh-variable counters so names
/// are unique across the whole pattern (like the paper's □i, □ii, −i, ...).
class Normalizer {
 public:
  Result<GraphPattern> Run(const GraphPattern& g) {
    GraphPattern out;
    out.mode = g.mode;
    out.where = g.where;
    out.paths.reserve(g.paths.size());
    for (const PathPatternDecl& d : g.paths) {
      PathPatternDecl nd;
      nd.selector = d.selector;
      nd.restrictor = d.restrictor;
      nd.path_var = d.path_var;
      GPML_ASSIGN_OR_RETURN(nd.pattern, NormalizePath(*d.pattern));
      out.paths.push_back(std::move(nd));
    }
    return out;
  }

 private:
  std::string FreshNodeVar() {
    return "$n" + std::to_string(++node_counter_);
  }
  std::string FreshEdgeVar() {
    return "$e" + std::to_string(++edge_counter_);
  }

  NodePattern AnonNode() {
    NodePattern n;
    n.var = FreshNodeVar();
    return n;
  }

  Result<PathPatternPtr> NormalizePath(const PathPattern& p) {
    switch (p.kind) {
      case PathPattern::Kind::kConcat:
        return NormalizeConcat(p);
      case PathPattern::Kind::kUnion:
      case PathPattern::Kind::kAlternation: {
        std::vector<PathPatternPtr> alts;
        alts.reserve(p.alternatives.size());
        for (const auto& a : p.alternatives) {
          GPML_ASSIGN_OR_RETURN(PathPatternPtr na, NormalizePath(*a));
          alts.push_back(std::move(na));
        }
        return p.kind == PathPattern::Kind::kUnion
                   ? PathPattern::Union(std::move(alts))
                   : PathPattern::Alternation(std::move(alts));
      }
    }
    return Status::Internal("unknown path pattern kind");
  }

  Result<PathPatternPtr> NormalizeConcat(const PathPattern& p) {
    std::vector<PathElement> out;
    out.reserve(p.elements.size() + 2);

    auto last_is_edge = [&]() {
      return !out.empty() && out.back().kind == PathElement::Kind::kEdge;
    };

    // Leading edge pattern needs a node on its left (§6.2).
    if (!p.elements.empty() &&
        p.elements.front().kind == PathElement::Kind::kEdge) {
      out.push_back(PathElement::Node(AnonNode()));
    }

    for (const PathElement& e : p.elements) {
      switch (e.kind) {
        case PathElement::Kind::kNode: {
          NodePattern n = e.node;
          if (n.var.empty()) n.var = FreshNodeVar();
          out.push_back(PathElement::Node(std::move(n)));
          break;
        }
        case PathElement::Kind::kEdge: {
          if (last_is_edge()) {
            out.push_back(PathElement::Node(AnonNode()));
          }
          EdgePattern ep = e.edge;
          if (ep.var.empty()) ep.var = FreshEdgeVar();
          out.push_back(PathElement::Edge(std::move(ep)));
          break;
        }
        case PathElement::Kind::kParen:
        case PathElement::Kind::kQuantified:
        case PathElement::Kind::kOptional: {
          if (last_is_edge()) {
            out.push_back(PathElement::Node(AnonNode()));
          }
          GPML_ASSIGN_OR_RETURN(PathPatternPtr sub, NormalizePath(*e.sub));
          PathElement ne = e;  // Copies kind/min/max/restrictor/where/flags.
          ne.sub = std::move(sub);
          out.push_back(std::move(ne));
          break;
        }
      }
    }

    // Trailing edge pattern needs a node on its right.
    if (last_is_edge()) out.push_back(PathElement::Node(AnonNode()));

    return PathPattern::Concat(std::move(out));
  }

  int node_counter_ = 0;
  int edge_counter_ = 0;
};

}  // namespace

Result<GraphPattern> Normalize(const GraphPattern& pattern) {
  Normalizer n;
  return n.Run(pattern);
}

}  // namespace gpml
