#ifndef GPML_BENCH_BENCH_UTIL_H_
#define GPML_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "eval/engine.h"
#include "graph/generator.h"
#include "graph/sample_graph.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace gpml {
namespace bench {

/// Runs a match and returns the row count; aborts on error so benchmarks
/// fail loudly instead of measuring garbage.
inline size_t RunOrDie(const PropertyGraph& g, const std::string& query,
                       EngineOptions options = {}) {
  Engine engine(g, options);
  Result<MatchOutput> out = engine.Match(query);
  if (!out.ok()) {
    std::fprintf(stderr, "benchmark query failed: %s\n  %s\n", query.c_str(),
                 out.status().ToString().c_str());
    std::abort();
  }
  return out->rows.size();
}

/// The p-th percentile (0 < p <= 100) of `samples` by linear interpolation
/// between closest ranks (the "exclusive" flavor numpy calls 'linear').
/// Sorts a copy; benchmarks call this once per distribution, not per
/// sample. Returns 0 for an empty sample set.
inline double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  double rank = (p / 100.0) * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  if (lo >= samples.size() - 1) return samples.back();
  double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

/// The tail summary every latency benchmark reports: p50/p95/p99 plus the
/// extremes, as ready-to-Add JsonReport extra pairs.
inline std::vector<std::pair<std::string, double>> LatencySummary(
    const std::vector<double>& samples_ms) {
  std::vector<double> sorted = samples_ms;
  std::sort(sorted.begin(), sorted.end());
  double min = sorted.empty() ? 0 : sorted.front();
  double max = sorted.empty() ? 0 : sorted.back();
  return {{"p50_ms", Percentile(sorted, 50)},
          {"p95_ms", Percentile(sorted, 95)},
          {"p99_ms", Percentile(sorted, 99)},
          {"min_ms", min},
          {"max_ms", max}};
}

/// Machine-readable benchmark report: one BENCH_<name>.json file written
/// next to the human-readable stdout output, so the repo accumulates a perf
/// trajectory that scripts can diff across commits. One row per measured
/// workload configuration; `extra` carries benchmark-specific metrics
/// (speedup ratios, thread counts, ...).
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  struct Row {
    std::string workload;
    double wall_ms = 0;
    size_t seeds = 0;
    size_t steps = 0;
    size_t rows = 0;
    std::vector<std::pair<std::string, double>> extra;
  };

  void Add(Row row) { rows_.push_back(std::move(row)); }

  void Add(std::string workload, double wall_ms, size_t seeds, size_t steps,
           size_t rows,
           std::vector<std::pair<std::string, double>> extra = {}) {
    Row r;
    r.workload = std::move(workload);
    r.wall_ms = wall_ms;
    r.seeds = seeds;
    r.steps = steps;
    r.rows = rows;
    r.extra = std::move(extra);
    Add(std::move(r));
  }

  /// The directory report files go to: $GPML_BENCH_OUT when set (CI points
  /// it at the artifact directory), else the current directory.
  static std::string OutDir() {
    const char* dir = std::getenv("GPML_BENCH_OUT");
    if (dir == nullptr || dir[0] == '\0') return "";
    std::string out = dir;
    if (out.back() != '/') out += '/';
    return out;
  }

  /// Writes BENCH_<name>.json into OutDir(), plus BENCH_<name>.prom — the
  /// Prometheus rendering of every live metrics registry at this point, so
  /// each bench gate leaves a metrics snapshot of the workload it just ran
  /// (docs/observability.md). IO failure warns but does not fail the
  /// benchmark contract (CI runs in scratch dirs).
  bool Write() const {
    WritePrometheusSnapshot();
    std::string path = OutDir() + "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"workloads\": [",
                 Escaped(name_).c_str());
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f,
                   "%s\n    {\"workload\": \"%s\", \"wall_ms\": %.4f, "
                   "\"seeds\": %zu, \"steps\": %zu, \"rows\": %zu",
                   i == 0 ? "" : ",", Escaped(r.workload).c_str(), r.wall_ms,
                   r.seeds, r.steps, r.rows);
      for (const auto& [key, value] : r.extra) {
        std::fprintf(f, ", \"%s\": %.4f", Escaped(key).c_str(), value);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu workload rows)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  void WritePrometheusSnapshot() const {
    std::string path = OutDir() + "BENCH_" + name_ + ".prom";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::string text =
        obs::RenderPrometheus(obs::AggregateAllRegistries());
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), text.size());
  }

  /// JSON string escaping for the identifier-ish names benchmarks use.
  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            // The cast matters: a plain (signed) char would sign-extend
            // and print 8 hex digits for bytes >= 0x80.
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace bench
}  // namespace gpml

#endif  // GPML_BENCH_BENCH_UTIL_H_
