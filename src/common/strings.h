#ifndef GPML_COMMON_STRINGS_H_
#define GPML_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace gpml {

/// Joins `parts` with `sep` ("a, b, c" style).
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);
/// ASCII uppercase copy.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality (keywords in GPML are case-insensitive).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Combines a hash into a running seed (boost::hash_combine recipe).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace gpml

#endif  // GPML_COMMON_STRINGS_H_
