#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "gql/json_export.h"

namespace gpml {
namespace server {

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : object_v) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::Serialize() const {
  switch (type) {
    case Type::kNull: return "null";
    case Type::kBool: return bool_v ? "true" : "false";
    case Type::kInt: return std::to_string(int_v);
    case Type::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", double_v);
      std::string s = buf;
      if (s.find_first_of(".eE") == std::string::npos &&
          s.find_first_of("nN") == std::string::npos) {
        s += ".0";  // Keep the double-ness visible to the parser.
      }
      return s;
    }
    case Type::kString: return "\"" + JsonEscape(string_v) + "\"";
    case Type::kArray: {
      std::string s = "[";
      for (size_t i = 0; i < array_v.size(); ++i) {
        if (i > 0) s += ",";
        s += array_v[i].Serialize();
      }
      return s + "]";
    }
    case Type::kObject: {
      std::string s = "{";
      for (size_t i = 0; i < object_v.size(); ++i) {
        if (i > 0) s += ",";
        s += "\"" + JsonEscape(object_v[i].first) + "\":";
        s += object_v[i].second.Serialize();
      }
      return s + "}";
    }
  }
  return "null";
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    GPML_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + msg);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool ConsumeLiteral(const char* lit) {
    size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth >= kJsonMaxDepth) {
      return Error("nesting deeper than " + std::to_string(kJsonMaxDepth));
    }
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    out->begin = pos_;
    char c = text_[pos_];
    Status st;
    switch (c) {
      case '{': st = ParseObject(out, depth); break;
      case '[': st = ParseArray(out, depth); break;
      case '"':
        out->type = JsonValue::Type::kString;
        st = ParseString(&out->string_v);
        break;
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        out->type = JsonValue::Type::kBool;
        out->bool_v = true;
        break;
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        out->type = JsonValue::Type::kBool;
        out->bool_v = false;
        break;
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        out->type = JsonValue::Type::kNull;
        break;
      default:
        st = ParseNumber(out);
    }
    if (!st.ok()) return st;
    out->end = pos_;
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      GPML_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      SkipWs();
      JsonValue member;
      GPML_RETURN_IF_ERROR(ParseValue(&member, depth + 1));
      out->object_v.emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWs();
      JsonValue element;
      GPML_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      out->array_v.push_back(std::move(element));
      SkipWs();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  /// Parses the 4 hex digits after a \u escape.
  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    size_t run_start = pos_;
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        out->append(text_, run_start, pos_ - run_start);
        ++pos_;
        break;
      }
      if (c == '\\') {
        out->append(text_, run_start, pos_ - run_start);
        ++pos_;
        if (pos_ >= text_.size()) return Error("truncated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            uint32_t cp = 0;
            GPML_RETURN_IF_ERROR(ParseHex4(&cp));
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: require the low half.
              if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Error("unpaired high surrogate");
              }
              pos_ += 2;
              uint32_t lo = 0;
              GPML_RETURN_IF_ERROR(ParseHex4(&lo));
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Error("unpaired low surrogate");
            }
            AppendUtf8(out, cp);
            break;
          }
          default:
            return Error("invalid escape character");
        }
        run_start = pos_;
        continue;
      }
      if (c < 0x20) {
        return Error("raw control character in string");
      }
      if (c < 0x80) {
        ++pos_;
        continue;
      }
      // Multi-byte UTF-8: validate via the shared validator in json_export.
      size_t remaining = text_.size() - pos_;
      size_t len = 0;
      if (c >= 0xC2 && c <= 0xDF) {
        len = 2;
      } else if (c >= 0xE0 && c <= 0xEF) {
        len = 3;
      } else if (c >= 0xF0 && c <= 0xF4) {
        len = 4;
      } else {
        return Error("invalid UTF-8 byte in string");
      }
      if (len > remaining) return Error("truncated UTF-8 sequence");
      if (!IsValidUtf8(text_.substr(pos_, len))) {
        return Error("invalid UTF-8 sequence in string");
      }
      pos_ += len;
    }
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    size_t int_start = pos_;
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    size_t int_digits = pos_ - int_start;
    if (int_digits == 0) return Error("invalid number");
    // RFC 8259: no leading zeros ("01" is two tokens, i.e. an error here).
    if (int_digits > 1 && text_[int_start] == '0') {
      return Error("leading zero in number");
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      size_t frac_start = pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac_start) return Error("digit required after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp_start = pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp_start) return Error("digit required in exponent");
    }
    std::string token = text_.substr(start, pos_ - start);
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        out->type = JsonValue::Type::kInt;
        out->int_v = static_cast<int64_t>(v);
        return Status::OK();
      }
      // Out of int64 range: fall through to double.
    }
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    out->type = JsonValue::Type::kDouble;
    out->double_v = d;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace server
}  // namespace gpml
