#ifndef GPML_SEMANTICS_NORMALIZE_H_
#define GPML_SEMANTICS_NORMALIZE_H_

#include "ast/ast.h"
#include "common/result.h"

namespace gpml {

/// Normalization (§6.2) rewrites a parsed graph pattern into canonical form:
///
///  1. Every concatenation starts and ends with a node pattern and
///     alternates node and edge patterns; missing node patterns are
///     supplied as anonymous `()` (including around quantifiers written on
///     bare edge patterns, §4.4).
///  2. Quantifier sugar is already numeric in the AST (`*` = {0,}, `+` =
///     {1,}); `?` keeps its own element kind because its conditional-
///     singleton semantics differ from {0,1} (§4.6).
///  3. Every anonymous node/edge pattern receives a fresh variable. Fresh
///     names start with '$' ("$n3", "$e1"), which cannot clash with user
///     identifiers (the lexer rejects '$'). The paper writes these as
///     squares and dashes; reduction later merges them (§6.5).
///
/// Parenthesized sub-patterns, unions, and alternations are normalized
/// recursively. Expressions and label expressions are shared, not copied.
Result<GraphPattern> Normalize(const GraphPattern& pattern);

/// True for variables invented by Normalize (anonymous patterns).
inline bool IsAnonymousVar(const std::string& var) {
  return !var.empty() && var[0] == '$';
}
/// True for anonymous *node* variables ("$n..").
inline bool IsAnonymousNodeVar(const std::string& var) {
  return var.size() >= 2 && var[0] == '$' && var[1] == 'n';
}
/// True for anonymous *edge* variables ("$e..").
inline bool IsAnonymousEdgeVar(const std::string& var) {
  return var.size() >= 2 && var[0] == '$' && var[1] == 'e';
}

}  // namespace gpml

#endif  // GPML_SEMANTICS_NORMALIZE_H_
