// gpml_server: the network query server (docs/server.md).
//
//   gpml_server [--port N] [--bind ADDR] [--workers N] [--queue N]
//               [--idle-timeout-ms N] [--slow-query-ms N]
//               [--load NAME=KIND ...]
//
// Serves the NDJSON query protocol and the HTTP GET /metrics and
// /slow_queries endpoints on one port. --load materializes generator
// graphs at startup (e.g. --load bank=fraud --load demo=paper); clients
// can add more at runtime with the load_graph op. SIGINT/SIGTERM trigger
// a graceful drain: in-flight queries finish and get their responses.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "graph/generator.h"
#include "graph/sample_graph.h"
#include "server/server.h"

namespace {

// Signal handlers can only poke a flag; the main thread does the draining.
volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--bind ADDR] [--workers N] [--queue N]\n"
      "          [--idle-timeout-ms N] [--slow-query-ms N]\n"
      "          [--load NAME=KIND ...]\n"
      "graph kinds: paper chain cycle complete diamond grid fraud random\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  gpml::server::ServerOptions options;
  options.port = 7687;

  struct Load {
    std::string name;
    std::string kind;
  };
  std::vector<Load> loads;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      options.port = std::atoi(next());
    } else if (arg == "--bind") {
      options.bind_address = next();
    } else if (arg == "--workers") {
      options.worker_threads = static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--queue") {
      options.max_queue = static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--idle-timeout-ms") {
      options.idle_timeout_ms = std::atof(next());
    } else if (arg == "--slow-query-ms") {
      options.engine.slow_query_ms = std::atof(next());
    } else if (arg == "--load") {
      std::string spec = next();
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--load needs NAME=KIND, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      loads.push_back(Load{spec.substr(0, eq), spec.substr(eq + 1)});
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  gpml::server::Server server(options);
  for (const Load& load : loads) {
    gpml::PropertyGraph graph = [&]() -> gpml::PropertyGraph {
      if (load.kind == "paper") return gpml::BuildPaperGraph();
      if (load.kind == "chain") return gpml::MakeChainGraph(100);
      if (load.kind == "cycle") return gpml::MakeCycleGraph(100);
      if (load.kind == "complete") return gpml::MakeCompleteGraph(16);
      if (load.kind == "diamond") return gpml::MakeDiamondChain(8);
      if (load.kind == "grid") return gpml::MakeGridGraph(10, 10);
      if (load.kind == "random") {
        return gpml::MakeRandomGraph(100, 300, 3, 0.25, 42);
      }
      // Default (also "fraud"): the scaled Figure 1 banking graph.
      return gpml::MakeFraudGraph(gpml::FraudGraphOptions{});
    }();
    gpml::Status added = server.AddGraph(load.name, std::move(graph));
    if (!added.ok()) {
      std::fprintf(stderr, "--load %s=%s: %s\n", load.name.c_str(),
                   load.kind.c_str(), added.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded graph '%s' (%s)\n", load.name.c_str(),
                 load.kind.c_str());
  }

  gpml::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "gpml_server listening on %s:%d (%zu workers)\n",
               options.bind_address.c_str(), server.port(),
               options.worker_threads);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  sigset_t empty;
  sigemptyset(&empty);
  while (g_stop == 0) sigsuspend(&empty);

  std::fprintf(stderr, "draining in-flight queries...\n");
  server.Stop();
  std::fprintf(stderr, "bye\n");
  return 0;
}
