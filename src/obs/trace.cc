#include "obs/trace.h"

#include "obs/clock.h"

namespace gpml {
namespace obs {

namespace {

/// Minimal JSON string escaping for span names and attribute values.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

int Trace::Begin(std::string name, int parent) {
  uint64_t now = MonotonicMicros();
  if (spans_.empty()) epoch_us_ = now;
  Span s;
  s.name = std::move(name);
  s.parent = parent;
  s.start_us = now - epoch_us_;
  spans_.push_back(std::move(s));
  return static_cast<int>(spans_.size()) - 1;
}

void Trace::End(int span) {
  if (span < 0 || static_cast<size_t>(span) >= spans_.size()) return;
  Span& s = spans_[static_cast<size_t>(span)];
  uint64_t now = MonotonicMicros() - epoch_us_;
  s.duration_us = static_cast<int64_t>(now - s.start_us);
}

void Trace::Attr(int span, std::string key, std::string value) {
  if (span < 0 || static_cast<size_t>(span) >= spans_.size()) return;
  spans_[static_cast<size_t>(span)].attrs.emplace_back(std::move(key),
                                                       std::move(value));
}

int Trace::AddComplete(std::string name, int parent, uint64_t start_us,
                       uint64_t duration_us) {
  if (spans_.empty()) epoch_us_ = MonotonicMicros();
  Span s;
  s.name = std::move(name);
  s.parent = parent;
  s.start_us = start_us;
  s.duration_us = static_cast<int64_t>(duration_us);
  spans_.push_back(std::move(s));
  return static_cast<int>(spans_.size()) - 1;
}

uint64_t Trace::NowUs() const {
  if (spans_.empty()) return 0;
  return MonotonicMicros() - epoch_us_;
}

void Trace::Clear() {
  spans_.clear();
  epoch_us_ = 0;
}

const Span* Trace::Find(const std::string& name) const {
  for (const Span& s : spans_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

double Trace::TotalMs(const std::string& name) const {
  double total_us = 0;
  for (const Span& s : spans_) {
    if (s.name == name && s.duration_us >= 0) {
      total_us += static_cast<double>(s.duration_us);
    }
  }
  return total_us / 1e3;
}

std::string Trace::ToJsonLines() const {
  std::string out;
  for (const Span& s : spans_) {
    out += "{\"span\":";
    AppendJsonString(&out, s.name);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  ",\"parent\":%d,\"start_us\":%llu,\"dur_us\":%lld",
                  s.parent, static_cast<unsigned long long>(s.start_us),
                  static_cast<long long>(s.duration_us));
    out += buf;
    if (!s.attrs.empty()) {
      out += ",\"attrs\":{";
      for (size_t i = 0; i < s.attrs.size(); ++i) {
        if (i != 0) out.push_back(',');
        AppendJsonString(&out, s.attrs[i].first);
        out.push_back(':');
        AppendJsonString(&out, s.attrs[i].second);
      }
      out.push_back('}');
    }
    out += "}\n";
  }
  return out;
}

void StringTraceSink::Emit(const Trace& trace) {
  std::string lines = trace.ToJsonLines();
  std::lock_guard<std::mutex> lock(mu_);
  buffer_ += lines;
  ++count_;
}

std::string StringTraceSink::TakeOutput() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = std::move(buffer_);
  buffer_.clear();
  return out;
}

size_t StringTraceSink::traces_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

void FileTraceSink::Emit(const Trace& trace) {
  std::string lines = trace.ToJsonLines();
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(lines.data(), 1, lines.size(), out_);
  std::fflush(out_);
}

}  // namespace obs
}  // namespace gpml
