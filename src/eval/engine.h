#ifndef GPML_EVAL_ENGINE_H_
#define GPML_EVAL_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/result.h"
#include "eval/binding.h"
#include "eval/expr_eval.h"
#include "eval/matcher.h"
#include "graph/property_graph.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"
#include "semantics/analyze.h"

namespace gpml {

/// Execution counters of one Engine::Match call, aggregated over all path
/// declarations. Filled when EngineOptions::metrics points here; the
/// planner benchmarks compare these with the planner on and off.
///
/// Deliberately plain size_t fields (the benchmarks depend on the struct
/// staying POD): nothing increments them during execution. Worker shards
/// count into shard-local MatchStats and the totals are merged into this
/// struct once per declaration, after all shards have joined — so a
/// num_threads > 1 run never races on these fields.
struct EngineMetrics {
  size_t decls = 0;                // Path declarations executed.
  size_t seeded_nodes = 0;         // Start nodes seeded, summed over decls.
  size_t matcher_steps = 0;        // Matcher instructions executed.
  size_t reversed_decls = 0;       // Declarations run against the mirrored
                                   // pattern (right-end anchor).
  size_t seed_filtered_decls = 0;  // Declarations seeded from the bindings
                                   // of earlier declarations.
  size_t threads = 0;              // Resolved worker count of this call.
  size_t plan_cache_hits = 0;      // 1 when the compiled plan came from the
                                   // graph's plan cache, else 0.
  size_t plan_cache_misses = 0;    // 1 on a fresh compile, else 0.
  size_t index_seeded_decls = 0;   // Declarations seeded from the equality
                                   // (label, prop) = value hash index.
};

struct EngineOptions {
  MatcherOptions matcher;
  size_t max_rows = 1u << 20;  // Join-output guard.
  /// Statistics-driven planning: anchor-end selection (running a pattern
  /// from its more selective endpoint, mirrored when that is the right one),
  /// join ordering, and seed lists restricted to already-bound variables.
  /// Off reproduces the unplanned engine exactly (differential testing).
  bool use_planner = true;
  /// Seed-partitioned parallel matching: per-declaration seed lists are
  /// sharded over this many worker threads and the per-shard match sets are
  /// merged in seed-index order, so results are byte-identical to the
  /// sequential run (see docs/parallel.md). 0 resolves to
  /// std::thread::hardware_concurrency(); 1 runs the exact sequential
  /// engine. Overrides MatcherOptions::num_threads.
  size_t num_threads = 0;
  /// Compiled-plan reuse: cache (normalized pattern, vars, plan, compiled
  /// programs) on the graph keyed by (graph identity token, pattern
  /// fingerprint) so repeated queries skip normalize/analyze/plan/compile
  /// (see planner/plan_cache.h). The cache is shared by every engine/host
  /// over the same graph.
  bool use_plan_cache = true;
  /// Interned-storage fast paths (docs/storage.md): label-partitioned CSR
  /// expansion and compiled symbol-id label predicates in the matcher. Off
  /// runs the legacy full-adjacency scans with string label matching — the
  /// differential oracle. Rows are byte-identical either way.
  bool use_csr = true;
  /// Planner seeding from the (label, prop) = value equality hash index
  /// when an anchor endpoint carries a matching inline predicate (EXPLAIN:
  /// `source=index:<label>.<prop>`). Off falls back to label-scan seeding;
  /// rows are identical, only the seed list shrinks.
  bool use_seed_index = true;
  /// When non-null, reset and filled on every Match call.
  EngineMetrics* metrics = nullptr;
};

/// One solution of a graph pattern: a path binding per path declaration
/// (§6.5 "Multiple patterns"), sharing singleton variables.
struct ResultRow {
  std::vector<std::shared_ptr<const PathBinding>> bindings;
};

/// The output of pattern matching, self-contained: rows plus the compiled
/// context needed to interpret them (variable table, normalized pattern with
/// the expressions the rows may be projected through, per-declaration path
/// variables).
struct MatchOutput {
  std::vector<ResultRow> rows;
  std::shared_ptr<const VarTable> vars;
  GraphPattern normalized;        // Keeps pattern ASTs alive.
  std::vector<int> path_vars;     // Per declaration; -1 when absent.

  size_t size() const { return rows.size(); }
};

/// Expression scope over one result row: singleton lookups see the last
/// binding of a variable, group collections span the whole row, path
/// variables resolve to their declaration's matched path. Used for the
/// final WHERE postfilter and by both hosts for projection.
class RowScope : public EvalScope {
 public:
  RowScope(const MatchOutput& output, const ResultRow& row)
      : output_(output), row_(row) {}

  std::optional<ElementRef> LookupSingleton(int var) const override;
  std::vector<ElementRef> CollectGroup(int var) const override;
  const Path* LookupPath(int var) const override;

 private:
  const MatchOutput& output_;
  const ResultRow& row_;
};

/// The GPML processor of Figure 9: evaluates graph patterns over one
/// property graph. Both hosts (SQL/PGQ's GRAPH_TABLE and GQL sessions)
/// delegate here; the pre-projection semantics is identical in both, as the
/// paper requires.
class Engine {
 public:
  explicit Engine(const PropertyGraph& graph, EngineOptions options = {})
      : graph_(graph), options_(options) {}

  /// Full pipeline from MATCH text: parse, normalize (§6.2), analyze
  /// (§4.4/§4.6/§4.7), termination-check (§5), compile, match, join
  /// declarations on shared singletons, apply the final WHERE.
  Result<MatchOutput> Match(const std::string& match_text) const;

  /// Same, starting from a parsed (unnormalized) pattern.
  Result<MatchOutput> Match(const GraphPattern& pattern) const;

  /// The execution plan the engine would use for this pattern: normalize,
  /// analyze, then run the statistics-driven planner (or the direct plan
  /// when use_planner is off).
  Result<planner::Plan> Plan(const GraphPattern& pattern) const;

  /// Human-readable EXPLAIN of the plan (see planner/explain.h for the
  /// format); both hosts surface this for EXPLAIN statements.
  Result<std::string> Explain(const std::string& match_text) const;
  Result<std::string> Explain(const GraphPattern& pattern) const;

  const PropertyGraph& graph() const { return graph_; }
  const EngineOptions& options() const { return options_; }

  /// The worker count Match will actually use: options().num_threads, with
  /// 0 resolved to the hardware concurrency (at least 1).
  size_t ResolvedThreads() const;

 private:
  /// The shared front half of Match/Plan/Explain: normalize (§6.2), analyze
  /// (§4.4/§4.6/§4.7), termination-check (§5), intern variables.
  struct Prepared {
    GraphPattern normalized;
    std::shared_ptr<const VarTable> vars;
  };
  Result<Prepared> Prepare(const GraphPattern& pattern) const;

  Result<planner::Plan> PlanNormalized(const GraphPattern& normalized,
                                       const VarTable& vars) const;

  /// The compiled plan for `pattern`: served from the graph's plan cache
  /// when enabled (`*cache_hit` reports which), computed-and-published
  /// otherwise. The entry is immutable and shared with the cache.
  Result<std::shared_ptr<const planner::CachedPlan>> PreparePlan(
      const GraphPattern& pattern, bool* cache_hit) const;

  const PropertyGraph& graph_;
  EngineOptions options_;
};

}  // namespace gpml

#endif  // GPML_EVAL_ENGINE_H_
