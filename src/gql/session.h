#ifndef GPML_GQL_SESSION_H_
#define GPML_GQL_SESSION_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "catalog/table.h"
#include "common/result.h"
#include "eval/engine.h"

namespace gpml {

/// A GQL host session (Figure 9, right branch): statements of the form
///
///   MATCH <graph pattern> [WHERE <postfilter>]
///   [RETURN [DISTINCT] <item> [AS alias], ...]
///
/// run against the session's current graph and produce a binding table.
/// Without a RETURN clause every named variable is projected. Execute()
/// returns the table; Match() exposes the raw path bindings for callers
/// that want graph-shaped output (see graph_projection.h, §6.6).
class Session {
 public:
  explicit Session(const Catalog& catalog, EngineOptions options = {})
      : catalog_(catalog), options_(options) {}

  /// Selects the working graph (GQL's USE <graph>).
  Status UseGraph(const std::string& name);

  /// Parses and runs a full statement against the current graph. A leading
  /// EXPLAIN keyword returns the planner's plan rendering as a one-column
  /// "plan" table instead of executing the match (any RETURN clause is
  /// parsed but not evaluated).
  Result<Table> Execute(const std::string& statement) const;

  /// Runs just the MATCH part, exposing row-level results.
  Result<MatchOutput> Match(const std::string& match_text) const;

  /// The planner's EXPLAIN text for the MATCH part of `statement` (a
  /// leading EXPLAIN keyword is accepted and ignored).
  Result<std::string> Explain(const std::string& statement) const;

  const PropertyGraph* graph() const { return graph_.get(); }

  /// Engine options applied to every statement (planner, worker threads,
  /// plan cache, evaluation budgets); adjustable between statements. The
  /// plan cache itself lives on the graph, so compiled plans survive both
  /// option changes and session teardown.
  const EngineOptions& options() const { return options_; }
  void set_options(EngineOptions options) { options_ = options; }

 private:
  const Catalog& catalog_;
  EngineOptions options_;
  std::shared_ptr<const PropertyGraph> graph_;
};

}  // namespace gpml

#endif  // GPML_GQL_SESSION_H_
