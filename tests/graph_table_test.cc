#include "pgq/graph_table.h"

#include <gtest/gtest.h>

#include "pgq/graph_view.h"

namespace gpml {
namespace {

// E20 (PGQ side): GRAPH_TABLE projects reduced path bindings into tables.

class GraphTableTest : public ::testing::Test {
 protected:
  GraphTableTest() {
    Result<GraphViewDef> def = InstallPaperTables(catalog_);
    EXPECT_TRUE(def.ok());
    EXPECT_TRUE(CreatePropertyGraph(catalog_, *def).ok());
  }
  Catalog catalog_;
};

TEST_F(GraphTableTest, PgqlStyleFigure4Query) {
  // The PGQL rendition of Figure 4 (§3), as GRAPH_TABLE.
  GraphTableQuery q;
  q.graph = "paper_graph";
  q.match =
      "MATCH (x:Account)-[:isLocatedIn]->(g:City)<-[:isLocatedIn]-"
      "(y:Account), ANY (x)-[e:Transfer]->+(y) "
      "WHERE x.isBlocked='no' AND y.isBlocked='yes' "
      "AND g.name='Ankh-Morpork'";
  q.columns = "x.owner AS A, y.owner AS B";
  Result<Table> t = GraphTable(catalog_, q);
  ASSERT_TRUE(t.ok()) << t.status();
  Table table = *t;
  table.SortRows();
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(*table.At(0, "A"), Value::String("Aretha"));
  EXPECT_EQ(*table.At(0, "B"), Value::String("Jay"));
  EXPECT_EQ(*table.At(1, "A"), Value::String("Dave"));
}

TEST_F(GraphTableTest, ListAggAlongPath) {
  // §3 PGQL: LISTAGG over the group edge variable.
  GraphTableQuery q;
  q.graph = "paper_graph";
  q.match =
      "MATCH ANY SHORTEST (x:Account WHERE x.owner='Dave')"
      "-[e:Transfer]->+(y:Account WHERE y.owner='Aretha')";
  q.columns =
      "x.owner AS A, y.owner AS B, LISTAGG(e, ', ') AS edges, "
      "COUNT(e) AS hops";
  Result<Table> t = GraphTable(catalog_, q);
  ASSERT_TRUE(t.ok()) << t.status();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(*t->At(0, "edges"), Value::String("t5, t2"));
  EXPECT_EQ(*t->At(0, "hops"), Value::Int(2));
}

TEST_F(GraphTableTest, CountVersusCountDistinctRepeatedEdges) {
  // §3: WHERE COUNT(e) = COUNT(DISTINCT e) filters out edge-repeating
  // walks.
  GraphTableQuery q;
  q.graph = "paper_graph";
  q.match =
      "MATCH (x:Account WHERE x.owner='Charles')-[e:Transfer]->{4}"
      "(y:Account WHERE y.owner='Scott') "
      "WHERE COUNT(e) = COUNT(DISTINCT e)";
  q.columns = "x.owner AS A, COUNT(e) AS n";
  Result<Table> t = GraphTable(catalog_, q);
  ASSERT_TRUE(t.ok()) << t.status();
  // The only 4-walk a5->a1 repeats t8 (a5,t8,a1,t1,a3,t7,a5,t8,a1): dropped.
  EXPECT_EQ(t->num_rows(), 0u);
}

TEST_F(GraphTableTest, UnknownGraphIsError) {
  GraphTableQuery q{"ghost", "MATCH (x)", "x"};
  EXPECT_EQ(GraphTable(catalog_, q).status().code(), StatusCode::kNotFound);
}

TEST_F(GraphTableTest, SurfaceSyntaxParser) {
  Result<GraphTableQuery> q = ParseGraphTableCall(
      "GRAPH_TABLE(paper_graph, "
      "MATCH (x:Account WHERE x.isBlocked='yes') "
      "COLUMNS (x.owner AS owner))");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->graph, "paper_graph");
  EXPECT_NE(q->match.find("MATCH"), std::string::npos);
  EXPECT_EQ(q->columns, "x.owner AS owner");

  Result<Table> t = GraphTable(catalog_, *q);
  ASSERT_TRUE(t.ok()) << t.status();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(*t->At(0, "owner"), Value::String("Jay"));
}

TEST_F(GraphTableTest, SurfaceSyntaxErrors) {
  EXPECT_FALSE(ParseGraphTableCall("SELECT 1").ok());
  EXPECT_FALSE(ParseGraphTableCall("GRAPH_TABLE(g MATCH (x))").ok());
  EXPECT_FALSE(
      ParseGraphTableCall("GRAPH_TABLE(g, MATCH (x) COLUMNS (x").ok());
}

TEST_F(GraphTableTest, ExplainAnalyzeThroughSqlHost) {
  GraphTableQuery q;
  q.graph = "paper_graph";
  q.match = "EXPLAIN ANALYZE MATCH (a:Account)-[t:Transfer]->(b:Account)";
  q.columns = "a AS ignored";
  Result<Table> t = GraphTable(catalog_, q);
  ASSERT_TRUE(t.ok()) << t.status();
  std::string text;
  for (const Row& row : t->rows()) text += row[0].ToString() + "\n";
  EXPECT_NE(text.find("actual_seeds="), std::string::npos) << text;
  EXPECT_NE(text.find("rows="), std::string::npos) << text;

  // A COLUMNS-only parameter binding is accepted (and dropped — ANALYZE
  // does not evaluate COLUMNS), exactly like the executing call would be.
  q.columns = "$tag AS tag";
  q.params = {{"tag", Value::Int(1)}};
  EXPECT_TRUE(GraphTable(catalog_, q).ok());

  // A name neither the pattern nor COLUMNS references stays an error.
  q.params = {{"nope", Value::Int(1)}};
  Result<Table> bad = GraphTable(catalog_, q);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("unknown parameter $nope"),
            std::string::npos);
}

TEST_F(GraphTableTest, BagSemanticsNoImplicitDistinct) {
  GraphTableQuery q;
  q.graph = "paper_graph";
  // Two different phones project the same owner rows.
  q.match = "MATCH (a:Account)~[:hasPhone]~(p:Phone)";
  q.columns = "p AS phone";
  Result<Table> t = GraphTable(catalog_, q);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 6u);  // One row per hasPhone edge: a bag.
}

}  // namespace
}  // namespace gpml
