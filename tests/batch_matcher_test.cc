// Vectorized batch matcher (docs/vectorized.md): the block-at-a-time
// frontier expansion behind EngineOptions::use_batch must produce rows
// byte-identical to the scalar interpreter — same rows, same order — across
// {batch on/off} x {threads 1,8} x {csr on/off} x {planner on/off}, on the
// fraud workloads and on adversarial graphs (self-loops, parallel edges,
// label universes beyond the 64-bit masks). Quantified, selector-carrying,
// and cross-referencing patterns must fall back to the scalar route
// untouched. Budgets behave identically: max_matches trips at the same
// accepted binding (accept order is preserved), and kTruncate emits a
// prefix of the oracle's rows. Includes the cyclic re-visit regression for
// the Figure 4 shape: equality joins against an earlier node variable hoist
// the label check to bind time only when the earlier occurrence implies it.

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/engine.h"
#include "graph/generator.h"
#include "graph/graph_builder.h"
#include "graph/sample_graph.h"

namespace gpml {
namespace {

/// Canonical order-preserving rendering: one string per row, bindings in
/// declaration order. Two runs agree iff the sequences match element-wise.
std::vector<std::string> CanonRows(const MatchOutput& out,
                                   const PropertyGraph& g) {
  std::vector<std::string> rows;
  rows.reserve(out.rows.size());
  for (const ResultRow& row : out.rows) {
    std::string s;
    for (const auto& pb : row.bindings) {
      s += pb->ToString(g, *out.vars);
      s += " | ";
    }
    rows.push_back(std::move(s));
  }
  return rows;
}

Result<MatchOutput> RunMatch(const PropertyGraph& g, const std::string& query,
                        bool use_batch, size_t threads = 1, bool csr = true,
                        bool planner = false,
                        EngineMetrics* metrics = nullptr) {
  EngineOptions options;
  options.use_batch = use_batch;
  options.num_threads = threads;
  options.use_csr = csr;
  options.use_planner = planner;
  options.metrics = metrics;
  options.matcher.min_seeds_per_shard = 1;  // Force real sharding.
  return Engine(g, options).Match(query);
}

/// Asserts batch on == batch off (byte-identical rows) over the full
/// execution matrix, holding the planner setting fixed on each comparison
/// (a different plan may legitimately reorder rows).
void ExpectBatchAgreement(const PropertyGraph& g, const std::string& query) {
  for (bool planner : {false, true}) {
    for (bool csr : {true, false}) {
      for (size_t threads : {size_t{1}, size_t{8}}) {
        EngineMetrics off_metrics;
        Result<MatchOutput> off =
            RunMatch(g, query, /*use_batch=*/false, threads, csr, planner,
                &off_metrics);
        ASSERT_TRUE(off.ok()) << query << " -> " << off.status();
        EXPECT_EQ(off_metrics.batch_blocks, 0u) << query;
        EngineMetrics on_metrics;
        Result<MatchOutput> on = RunMatch(g, query, /*use_batch=*/true, threads,
                                     csr, planner, &on_metrics);
        ASSERT_TRUE(on.ok()) << query << " -> " << on.status();
        EXPECT_EQ(CanonRows(*off, g), CanonRows(*on, g))
            << query << " threads=" << threads << " csr=" << csr
            << " planner=" << planner << " on " << g.Summary();
      }
    }
  }
}

PropertyGraph MatrixGraph() {
  // parallel_test's generator scale: unbounded TRAIL/ACYCLIC enumerations
  // are exponential in the transfer density, so those run on the paper
  // graph only and this graph keeps a low density.
  FraudGraphOptions options;
  options.num_accounts = 30;
  options.transfers_per_account = 2;
  options.num_cities = 2;
  return MakeFraudGraph(options);
}

/// Batch-eligible workloads: linear fixed-length concatenations with
/// kernel-compilable inline predicates.
const char* kEligibleWorkloads[] = {
    "MATCH (x:Account)",
    "MATCH (x:Account WHERE x.isBlocked='yes')",
    "MATCH (x:Account WHERE x.isBlocked='no')-[t:Transfer]->(y:Account)",
    "MATCH (x:Account)-[t:Transfer WHERE t.amount > 5000000]->(y:Account)",
    "MATCH (a:Account)-[:Transfer]->(b:Account)-[:Transfer]->(c:Account "
    "WHERE c.isBlocked='yes')",
    "MATCH (x:Account)-[:isLocatedIn]->(c:City WHERE c.name='Ankh-Morpork')"
    "<-[:isLocatedIn]-(y:Account WHERE y.isBlocked='yes')",
    "MATCH (x:Phone)~[:hasPhone]~(y:Account)",
    // Equality re-visit: the same node variable closes the pattern.
    "MATCH (x:Account)-[:Transfer]->(y:Account)-[:Transfer]->(x)",
    // Repeated edge variable: equality join on the edge.
    "MATCH (x:Account)-[t:Transfer]->(y:Account)<-[t:Transfer]-(z)",
    // A pattern-level WHERE is a postfilter over joined rows, not an
    // inline element predicate — the program itself stays batch-eligible.
    "MATCH (a:Account)-[t:Transfer]->(b:Account)-[u:Transfer]->(c:Account) "
    "WHERE t.amount <= u.amount",
};

/// Scalar-fallback workloads: quantifiers (bounded — see MatrixGraph),
/// selectors, restrictors, and WHEREs no kernel compiles (cross-element
/// and computed predicates).
const char* kFallbackWorkloads[] = {
    "MATCH (x:Account)-[:Transfer]->{1,3}(y:Account WHERE "
    "y.isBlocked='yes')",
    "MATCH TRAIL (x:Account)-[:Transfer]->{1,3}(y:Account WHERE "
    "y.isBlocked='yes')",
    "MATCH ALL SHORTEST (x:Account)-[:Transfer]->+(y:Account)",
    // Inline predicate no kernel compiles (IS NULL is not a comparison
    // against a literal or parameter).
    "MATCH (x:Account)-[t:Transfer WHERE t.amount IS NOT NULL]->(y:Account)",
};

/// Unbounded enumerations: exponential in transfer density, so exercised
/// on the paper graph only (the parallel_test convention).
const char* kPaperOnlyWorkloads[] = {
    "MATCH TRAIL (x:Account)-[:Transfer]->+(y:Account WHERE "
    "y.isBlocked='yes')",
    "MATCH ACYCLIC (x:Account)(-[:Transfer]->|<-[:Transfer]-)+"
    "(y:Account WHERE y.isBlocked='yes')",
};

TEST(BatchMatcherTest, FraudMatrixByteIdentical) {
  PropertyGraph g = MatrixGraph();
  for (const char* query : kEligibleWorkloads) {
    ExpectBatchAgreement(g, query);
  }
  for (const char* query : kFallbackWorkloads) {
    ExpectBatchAgreement(g, query);
  }
}

TEST(BatchMatcherTest, PaperGraph) {
  PropertyGraph g = BuildPaperGraph();
  for (const char* query : kEligibleWorkloads) {
    ExpectBatchAgreement(g, query);
  }
  for (const char* query : kPaperOnlyWorkloads) {
    ExpectBatchAgreement(g, query);
  }
}

TEST(BatchMatcherTest, EligibleWorkloadsActuallyRunBatched) {
  PropertyGraph g = MatrixGraph();
  for (const char* query : kEligibleWorkloads) {
    EngineMetrics metrics;
    Result<MatchOutput> out = RunMatch(g, query, /*use_batch=*/true, 1, true,
                                  false, &metrics);
    ASSERT_TRUE(out.ok()) << query;
    // Single-node patterns expand no level, so only multi-hop workloads
    // must report blocks; every eligible workload with an edge does.
    if (std::string(query).find("->") != std::string::npos ||
        std::string(query).find("~[") != std::string::npos) {
      EXPECT_GT(metrics.batch_blocks, 0u) << query;
      EXPECT_GT(metrics.batch_candidates, 0u) << query;
      EXPECT_GE(metrics.batch_candidates, metrics.batch_survivors) << query;
    }
  }
}

TEST(BatchMatcherTest, FallbackWorkloadsStayScalar) {
  PropertyGraph g = MatrixGraph();
  for (const char* query : kFallbackWorkloads) {
    EngineMetrics metrics;
    Result<MatchOutput> out = RunMatch(g, query, /*use_batch=*/true, 1, true,
                                  false, &metrics);
    ASSERT_TRUE(out.ok()) << query;
    EXPECT_EQ(metrics.batch_blocks, 0u) << query;
  }
}

TEST(BatchMatcherTest, SelfLoopsAndParallelEdges) {
  GraphBuilder b;
  b.AddNode("a", {"A", "B"}, {{"w", Value::Int(1)}});
  b.AddNode("b", {"A"}, {{"w", Value::Int(2)}});
  b.AddDirectedEdge("d1", "a", "a", {"T"});         // Directed self-loop.
  b.AddUndirectedEdge("u1", "b", "b", {"T", "S"});  // Undirected loop.
  b.AddDirectedEdge("d2", "a", "b", {"T"});         // Parallel pair...
  b.AddDirectedEdge("d3", "a", "b", {"T"});
  b.AddUndirectedEdge("u2", "a", "b", {"S"});
  b.AddDirectedEdge("plain", "a", "b", {});         // Label-less.
  PropertyGraph g = std::move(b).Build().value();
  const char* queries[] = {
      "MATCH (x:A)-[:T]->(y)",
      "MATCH (x)-[:T]->(x)",  // Self-loops only.
      "MATCH (x:A)-[e]->(y:A)-[f]->(z)",
      "MATCH (x)~[:S]~(y)",
      "MATCH (x:A WHERE x.w < 2)-[:T]->(y)-[:T]->(z)",
  };
  for (const char* query : queries) {
    ExpectBatchAgreement(g, query);
  }
}

TEST(BatchMatcherTest, LabelUniverseBeyondBitset) {
  // 70 distinct labels: label bitsets are unusable, so the batch label
  // passes must run through the symbol-array predicate path.
  GraphBuilder b;
  const int kNodes = 70;
  for (int i = 0; i < kNodes; ++i) {
    b.AddNode("n" + std::to_string(i), {"L" + std::to_string(i), "Common"},
              {{"w", Value::Int(i % 7)}});
  }
  for (int i = 0; i < kNodes; ++i) {
    b.AddDirectedEdge("e" + std::to_string(i), "n" + std::to_string(i),
                      "n" + std::to_string((i + 1) % kNodes),
                      {"E" + std::to_string(i % 5)});
  }
  PropertyGraph g = std::move(b).Build().value();
  ASSERT_FALSE(g.label_bits_usable());
  ExpectBatchAgreement(g, "MATCH (x:L3&Common)-[:E3]->(y:Common WHERE "
                          "y.w < 5)");
  ExpectBatchAgreement(g, "MATCH (x:Common)-[:E0]->(y)-[:E1]->(z)");
}

TEST(BatchMatcherTest, RandomMultigraphs) {
  for (uint64_t seed : {1u, 2u, 7u}) {
    PropertyGraph g = MakeRandomGraph(/*num_nodes=*/8, /*num_edges=*/40,
                                      /*num_labels=*/3,
                                      /*undirected_fraction=*/0.4, seed);
    ExpectBatchAgreement(g, "MATCH (x:L0)-[:L1]->(y)");
    ExpectBatchAgreement(g, "MATCH (x)-[e:L0]->(y)-[f:L2]->(z)");
    ExpectBatchAgreement(g, "MATCH (x)~[]~(y:L1)");
  }
}

// The Figure 4 cyclic-shape regression: when a pattern re-visits a node
// variable, the batch path joins by equality against the earlier binding
// and may skip the label re-check only when the first occurrence's labels
// imply it. A second occurrence carrying MORE labels than the first must
// still be label-checked.
TEST(BatchMatcherTest, CyclicRevisitReChecksNarrowerLabels) {
  GraphBuilder b;
  b.AddNode("plain", {}, {});            // No labels at all.
  b.AddNode("marked", {"A"}, {});
  b.AddDirectedEdge("lp", "plain", "plain", {"T"});
  b.AddDirectedEdge("lm", "marked", "marked", {"T"});
  PropertyGraph g = std::move(b).Build().value();

  // First occurrence unlabeled, second requires :A — only the marked
  // self-loop satisfies the cycle.
  const std::string narrowing = "MATCH (x)-[:T]->(x:A)";
  ExpectBatchAgreement(g, narrowing);
  Result<MatchOutput> out = RunMatch(g, narrowing, /*use_batch=*/true);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows.size(), 1u);

  // Same labels on both occurrences: the equality join implies the label,
  // and the result is identical either way.
  ExpectBatchAgreement(g, "MATCH (x:A)-[:T]->(x:A)");
  // Second occurrence unlabeled: trivially implied.
  ExpectBatchAgreement(g, "MATCH (x:A)-[:T]->(x)");
}

TEST(BatchMatcherTest, Figure4CycleOnFraudGraph) {
  PropertyGraph g = MatrixGraph();
  // Transfer triangles re-entering the start account.
  ExpectBatchAgreement(
      g, "MATCH (x:Account WHERE x.isBlocked='yes')-[:Transfer]->"
         "(y:Account)-[:Transfer]->(z:Account)-[:Transfer]->(x)");
}

// --- Budgets --------------------------------------------------------------

TEST(BatchMatcherTest, MatchBudgetTripsIdentically) {
  PropertyGraph g = MatrixGraph();
  const std::string query =
      "MATCH (x:Account)-[:Transfer]->(y:Account)-[:Transfer]->(z:Account)";
  Result<MatchOutput> full = RunMatch(g, query, /*use_batch=*/false);
  ASSERT_TRUE(full.ok());
  const size_t total = full->rows.size();
  ASSERT_GT(total, 10u);

  for (bool use_batch : {false, true}) {
    // Accept order is preserved, so max_matches trips at exactly the same
    // accepted binding on both routes.
    EngineOptions options;
    options.use_batch = use_batch;
    options.matcher.max_matches = total;
    EXPECT_TRUE(Engine(g, options).Match(query).ok()) << use_batch;
    options.matcher.max_matches = total - 1;
    Result<MatchOutput> clipped = Engine(g, options).Match(query);
    ASSERT_FALSE(clipped.ok()) << use_batch;
    EXPECT_EQ(clipped.status().code(), StatusCode::kResourceExhausted);
  }
}

/// Denser fraud graph for the budget tests: the step totals must dwarf the
/// parallel charge batching grain (256 per shard) so a shared half-budget
/// is guaranteed to trip (the parallel_test sizing).
PropertyGraph BudgetGraph() {
  FraudGraphOptions options;
  options.num_accounts = 40;
  return MakeFraudGraph(options);
}

const char kBudgetQuery[] =
    "MATCH (x:Account)-[:Transfer]->(y:Account)-[:Transfer]->(z:Account)"
    "-[:Transfer]->(w:Account)";

TEST(BatchMatcherTest, TruncatedRowsAreAPrefixOfTheOracle) {
  PropertyGraph g = BudgetGraph();
  EngineOptions base;
  base.use_batch = false;
  Result<MatchOutput> oracle = Engine(g, base).Match(kBudgetQuery);
  ASSERT_TRUE(oracle.ok());
  std::vector<std::string> want = CanonRows(*oracle, g);
  ASSERT_GT(want.size(), 10u);

  for (bool use_batch : {false, true}) {
    // max_matches under kTruncate: the accepted-binding budget charges in
    // identical order, so the truncated output is byte-identical.
    EngineOptions options;
    options.use_batch = use_batch;
    options.on_budget = EngineOptions::BudgetPolicy::kTruncate;
    options.matcher.max_matches = 7;
    Result<MatchOutput> out = Engine(g, options).Match(kBudgetQuery);
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_TRUE(out->truncated);
    std::vector<std::string> got = CanonRows(*out, g);
    ASSERT_LE(got.size(), want.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
        << "batch=" << use_batch << ": truncated rows are not a prefix";

    // max_steps under kTruncate: the two routes charge different step
    // totals (the batch path charges per gathered candidate), so the
    // truncation points differ — but whatever prefix survives must still
    // be a prefix of the oracle's rows. Budget at half of this route's
    // own full step count so it reliably trips mid-search.
    EngineMetrics route_metrics;
    Result<MatchOutput> full = RunMatch(g, kBudgetQuery, use_batch, 1, true,
                                        false, &route_metrics);
    ASSERT_TRUE(full.ok());
    ASSERT_GT(route_metrics.matcher_steps, 100u);
    EngineOptions steps;
    steps.use_batch = use_batch;
    steps.on_budget = EngineOptions::BudgetPolicy::kTruncate;
    steps.matcher.max_steps = route_metrics.matcher_steps / 2;
    Result<MatchOutput> clipped = Engine(g, steps).Match(kBudgetQuery);
    ASSERT_TRUE(clipped.ok()) << clipped.status();
    EXPECT_TRUE(clipped->truncated);
    std::vector<std::string> prefix = CanonRows(*clipped, g);
    ASSERT_LT(prefix.size(), want.size());
    EXPECT_TRUE(std::equal(prefix.begin(), prefix.end(), want.begin()))
        << "batch=" << use_batch << ": step-truncated rows diverge";
  }
}

TEST(BatchMatcherTest, SharedStepBudgetTripsAcrossShards) {
  PropertyGraph g = BudgetGraph();
  EngineMetrics metrics;
  Result<MatchOutput> full =
      RunMatch(g, kBudgetQuery, /*use_batch=*/true, 1, true, false, &metrics);
  ASSERT_TRUE(full.ok());
  // The shards flush charges in batches of 256, so up to 256 x 8 steps can
  // sit uncharged; a half-budget is guaranteed to trip only when
  // total - 2048 > total / 2, i.e. total > 4096.
  ASSERT_GT(metrics.matcher_steps, 5000u);

  // One shared atomic budget spans all shards on the batch route too.
  EngineOptions options;
  options.use_batch = true;
  options.num_threads = 8;
  options.matcher.min_seeds_per_shard = 1;
  options.matcher.max_steps = metrics.matcher_steps / 2;
  Result<MatchOutput> clipped = Engine(g, options).Match(kBudgetQuery);
  ASSERT_FALSE(clipped.ok());
  EXPECT_EQ(clipped.status().code(), StatusCode::kResourceExhausted);

  options.matcher.max_steps = metrics.matcher_steps;
  EXPECT_TRUE(Engine(g, options).Match(kBudgetQuery).ok());
}

// --- Cursor streaming -----------------------------------------------------

TEST(BatchMatcherTest, CursorStreamsIdenticalRows) {
  PropertyGraph g = MatrixGraph();
  const char* queries[] = {
      "MATCH (x:Account WHERE x.isBlocked='no')-[t:Transfer]->(y:Account)",
      "MATCH (x:Account)-[:isLocatedIn]->(c:City WHERE "
      "c.name='Ankh-Morpork')<-[:isLocatedIn]-(y:Account)",
  };
  for (const char* query : queries) {
    EngineOptions off;
    off.use_batch = false;
    Result<MatchOutput> oracle = Engine(g, off).Match(query);
    ASSERT_TRUE(oracle.ok());
    std::vector<std::string> want = CanonRows(*oracle, g);

    for (std::optional<uint64_t> limit :
         {std::optional<uint64_t>{}, std::optional<uint64_t>{3}}) {
      EngineOptions on;
      on.use_batch = true;
      Engine engine(g, on);
      Result<PreparedQuery> q = engine.Prepare(query);
      ASSERT_TRUE(q.ok()) << q.status();
      Result<Cursor> cursor = q->Open({}, limit);
      ASSERT_TRUE(cursor.ok()) << cursor.status();
      std::vector<std::string> got;
      RowView view;
      while (true) {
        Result<bool> more = cursor->Next(&view);
        ASSERT_TRUE(more.ok()) << more.status();
        if (!*more) break;
        std::string s;
        for (const auto& pb : view.row->bindings) {
          s += pb->ToString(g, *view.context->vars);
          s += " | ";
        }
        got.push_back(std::move(s));
      }
      std::vector<std::string> expected(
          want.begin(),
          want.begin() + static_cast<long>(
                             limit ? std::min<size_t>(*limit, want.size())
                                   : want.size()));
      EXPECT_EQ(got, expected) << query << " limit=" << limit.has_value();
    }
  }
}

}  // namespace
}  // namespace gpml
