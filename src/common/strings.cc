#include "common/strings.h"

#include <cctype>

namespace gpml {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(a[i]) != std::tolower(b[i])) return false;
  }
  return true;
}

}  // namespace gpml
