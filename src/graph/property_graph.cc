#include "graph/property_graph.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"

namespace gpml {

std::shared_ptr<obs::MetricsRegistry> PropertyGraph::metrics_registry()
    const {
  std::shared_ptr<obs::MetricsRegistry> reg =
      std::atomic_load(&metrics_registry_);
  if (reg != nullptr) return reg;
  auto fresh = std::make_shared<obs::MetricsRegistry>();
  // First publisher wins; losers adopt the winner's registry so every
  // engine over this graph increments the same counters.
  if (std::atomic_compare_exchange_strong(&metrics_registry_, &reg, fresh)) {
    return fresh;
  }
  return reg;
}

uint64_t PropertyGraph::NextIdentityToken() {
  // Starts at 1 so 0 can mean "no graph" in cache keys and tests.
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

bool ElementData::HasLabel(const std::string& label) const {
  return std::binary_search(labels.begin(), labels.end(), label);
}

const Value& ElementData::GetProperty(const std::string& prop) const {
  static const Value kNull = Value::Null();
  auto it = properties.find(prop);
  return it == properties.end() ? kNull : it->second;
}

NodeId PropertyGraph::FindNode(const std::string& name) const {
  auto it = node_by_name_.find(name);
  return it == node_by_name_.end() ? kInvalidId : it->second;
}

EdgeId PropertyGraph::FindEdge(const std::string& name) const {
  auto it = edge_by_name_.find(name);
  return it == edge_by_name_.end() ? kInvalidId : it->second;
}

const std::vector<NodeId>& PropertyGraph::NodesWithLabel(
    const std::string& label) const {
  static const std::vector<NodeId> kEmpty;
  auto it = nodes_by_label_.find(label);
  return it == nodes_by_label_.end() ? kEmpty : it->second;
}

const std::vector<EdgeId>& PropertyGraph::EdgesWithLabel(
    const std::string& label) const {
  static const std::vector<EdgeId> kEmpty;
  auto it = edges_by_label_.find(label);
  return it == edges_by_label_.end() ? kEmpty : it->second;
}

NodeId PropertyGraph::Cross(EdgeId e, NodeId from, Traversal t) const {
  const EdgeData& ed = edges_[e];
  switch (t) {
    case Traversal::kForward:
      if (ed.directed && ed.u == from) return ed.v;
      return kInvalidId;
    case Traversal::kBackward:
      if (ed.directed && ed.v == from) return ed.u;
      return kInvalidId;
    case Traversal::kUndirected:
      if (!ed.directed) {
        if (ed.u == from) return ed.v;
        if (ed.v == from) return ed.u;
      }
      return kInvalidId;
  }
  return kInvalidId;
}

std::string PropertyGraph::Summary() const {
  return std::to_string(num_nodes()) + " nodes, " + std::to_string(num_edges()) +
         " edges";
}

void PropertyGraph::BuildIndexes() {
  adjacency_.assign(nodes_.size(), {});
  node_by_name_.clear();
  edge_by_name_.clear();
  nodes_by_label_.clear();
  edges_by_label_.clear();

  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (!nodes_[n].name.empty()) node_by_name_[nodes_[n].name] = n;
    for (const std::string& l : nodes_[n].labels) {
      nodes_by_label_[l].push_back(n);
    }
  }
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    const EdgeData& ed = edges_[e];
    if (!ed.name.empty()) edge_by_name_[ed.name] = e;
    for (const std::string& l : ed.labels) edges_by_label_[l].push_back(e);
    if (ed.directed) {
      adjacency_[ed.u].push_back({e, ed.v, Traversal::kForward});
      adjacency_[ed.v].push_back({e, ed.u, Traversal::kBackward});
    } else {
      adjacency_[ed.u].push_back({e, ed.v, Traversal::kUndirected});
      // A non-loop undirected edge can be crossed from either endpoint; a
      // loop contributes a single adjacency record.
      if (ed.u != ed.v) {
        adjacency_[ed.v].push_back({e, ed.u, Traversal::kUndirected});
      }
    }
  }

  BuildInternedLayer();
}

void PropertyGraph::BuildInternedLayer() {
  label_symbols_ = SymbolTable();
  property_symbols_ = SymbolTable();
  node_label_offsets_.assign(1, 0);
  node_label_syms_.clear();
  edge_label_offsets_.assign(1, 0);
  edge_label_syms_.clear();
  node_label_bits_.assign(nodes_.size(), 0);
  edge_label_bits_.assign(edges_.size(), 0);
  node_columns_.clear();
  edge_columns_.clear();
  seed_index_ = PropertySeedIndex();

  // Labels: intern every name, store each element's set as a sorted run of
  // symbol ids plus (when the universe fits) a 64-bit mask.
  auto intern_labels = [this](const ElementData& d, std::vector<Symbol>* syms,
                              std::vector<uint32_t>* offsets) {
    size_t begin = syms->size();
    for (const std::string& l : d.labels) {
      syms->push_back(label_symbols_.Intern(l));
    }
    std::sort(syms->begin() + begin, syms->end());
    offsets->push_back(static_cast<uint32_t>(syms->size()));
  };
  for (const NodeData& nd : nodes_) {
    intern_labels(nd, &node_label_syms_, &node_label_offsets_);
  }
  for (const EdgeData& ed : edges_) {
    intern_labels(ed, &edge_label_syms_, &edge_label_offsets_);
  }
  if (label_bits_usable()) {
    for (NodeId n = 0; n < nodes_.size(); ++n) {
      for (Symbol s : node_label_syms(n)) {
        node_label_bits_[n] |= uint64_t{1} << s;
      }
    }
    for (EdgeId e = 0; e < edges_.size(); ++e) {
      for (Symbol s : edge_label_syms(e)) {
        edge_label_bits_[e] |= uint64_t{1} << s;
      }
    }
  }

  // Columnar property mirror: one dense array per key symbol, NULL-padded.
  // The string-keyed per-element maps stay authoritative for construction
  // and as the differential oracle; tests assert the mirror agrees.
  auto mirror_properties = [this](const ElementData& d, uint32_t id,
                                  size_t universe,
                                  std::vector<std::vector<Value>>* columns) {
    for (const auto& [key, value] : d.properties) {
      Symbol s = property_symbols_.Intern(key);
      if (columns->size() <= s) columns->resize(s + 1);
      std::vector<Value>& col = (*columns)[s];
      if (col.empty()) col.assign(universe, Value::Null());
      col[id] = value;
    }
  };
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    mirror_properties(nodes_[n], n, nodes_.size(), &node_columns_);
  }
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    mirror_properties(edges_[e], e, edges_.size(), &edge_columns_);
  }
  // Node-only and edge-only keys share the symbol space; size both column
  // sets to the full universe so lookups index safely (empty column = NULL).
  node_columns_.resize(property_symbols_.size());
  edge_columns_.resize(property_symbols_.size());

  // Equality seed index over (node label, property key, value), filled in
  // ascending node-id order so index-backed seeds enumerate in exactly the
  // order label-scan seeding would.
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    for (Symbol ls : node_label_syms(n)) {
      for (const auto& [key, value] : nodes_[n].properties) {
        if (value.is_null()) continue;  // `= NULL` never selects.
        seed_index_.Add(ls, property_symbols_.Find(key), value, n);
      }
    }
  }

  // Label-partitioned CSR over the adjacency lists.
  csr_.Build(adjacency_, edge_label_offsets_, edge_label_syms_);
}

}  // namespace gpml
