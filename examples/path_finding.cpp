// Restrictors and selectors (Figures 7 and 8) on a transport-style network:
// every selector on the same origin/destination pair, every restrictor on a
// cyclic route graph — the "what is the most scenic route" flavour of §7.2.

#include <cstdio>
#include <string>

#include "catalog/catalog.h"
#include "gql/session.h"
#include "graph/generator.h"
#include "graph/graph_builder.h"

namespace {

gpml::PropertyGraph BuildTransportNetwork() {
  // A small city network: stations with interconnecting lines, one express
  // shortcut, one scenic loop. Designed so different selectors pick
  // different answers.
  gpml::GraphBuilder b;
  auto station = [&](const std::string& id) {
    b.AddNode(id, {"Station"}, {{"name", gpml::Value::String(id)}});
  };
  for (const char* s : {"airport", "center", "harbor", "museum", "park",
                        "oldtown", "stadium"}) {
    station(s);
  }
  int i = 0;
  auto line = [&](const std::string& from, const std::string& to,
                  int64_t minutes) {
    b.AddDirectedEdge("r" + std::to_string(i++), from, to, {"Line"},
                      {{"minutes", gpml::Value::Int(minutes)}});
  };
  line("airport", "center", 20);
  line("center", "airport", 20);
  line("airport", "stadium", 8);
  line("stadium", "center", 9);
  line("center", "harbor", 6);
  line("harbor", "museum", 4);
  line("museum", "center", 5);
  line("center", "park", 7);
  line("park", "oldtown", 3);
  line("oldtown", "center", 4);
  line("harbor", "park", 5);
  return std::move(std::move(b).Build()).value();
}

void Run(const gpml::Session& session, const char* title,
         const std::string& query) {
  std::printf("--- %s\ngpml> %s\n", title, query.c_str());
  gpml::Result<gpml::Table> t = session.Execute(query);
  if (!t.ok()) {
    std::printf("  error: %s\n\n", t.status().ToString().c_str());
    return;
  }
  std::printf("%s(%zu rows)\n\n", t->ToString().c_str(), t->num_rows());
}

}  // namespace

int main() {
  gpml::Catalog catalog;
  (void)catalog.AddGraph("city", BuildTransportNetwork());
  (void)catalog.AddGraph("grid", gpml::MakeGridGraph(4, 4));

  gpml::Session session(catalog);
  (void)session.UseGraph("city");

  const std::string trip =
      "(a WHERE a.name='airport')-[l:Line]->*(b WHERE b.name='museum')";

  Run(session, "ANY SHORTEST: one fastest-hop route",
      "MATCH ANY SHORTEST p = " + trip + " RETURN p, PATH_LENGTH(p) AS hops");
  Run(session, "ALL SHORTEST: every minimal-hop route",
      "MATCH ALL SHORTEST p = " + trip + " RETURN p");
  Run(session, "SHORTEST 3: the three best routes",
      "MATCH SHORTEST 3 p = " + trip + " RETURN p, PATH_LENGTH(p) AS hops");
  Run(session, "SHORTEST 2 GROUP: the two best hop-counts, all routes",
      "MATCH SHORTEST 2 GROUP p = " + trip +
          " RETURN p, PATH_LENGTH(p) AS hops");
  Run(session, "Total travel time along the chosen route (group SUM)",
      "MATCH ANY SHORTEST p = (a WHERE a.name='airport')-[l:Line]->*"
      "(b WHERE b.name='museum') "
      "RETURN p, SUM(l.minutes) AS minutes");

  Run(session, "TRAIL: sightseeing without reusing a connection",
      "MATCH TRAIL p = (a WHERE a.name='center')-[:Line]->+"
      "(b WHERE b.name='center') RETURN p, PATH_LENGTH(p) AS hops");
  Run(session, "ACYCLIC: no station twice",
      "MATCH ACYCLIC p = (a WHERE a.name='airport')-[:Line]->+"
      "(b WHERE b.name='oldtown') RETURN p");
  Run(session, "SIMPLE: closed loops through the center",
      "MATCH SIMPLE p = (a WHERE a.name='center')-[:Line]->+(a) "
      "RETURN p");

  (void)session.UseGraph("grid");
  Run(session, "Grid corner-to-corner: C(6,3)=20 lattice paths",
      "MATCH ALL SHORTEST p = (a WHERE a.owner='u0')-[:Transfer]->*"
      "(b WHERE b.owner='u15') RETURN COUNT(p) AS dummy, p");

  return 0;
}
