#ifndef GPML_OBS_QUERY_STATS_H_
#define GPML_OBS_QUERY_STATS_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace gpml {
namespace obs {

/// What the engine reports to the store when one execution completes —
/// success, error, or budget truncation alike. Keyed by the parameterized
/// plan-cache fingerprint (Print of the normalized pattern, $names kept),
/// so literal-varying executions of one shape aggregate under one entry:
/// the pg_stat_statements model.
struct QueryObservation {
  std::string fingerprint;   // Parameterized pattern text.
  uint64_t graph_token = 0;  // PropertyGraph::identity_token of the run.
  std::string tenant;        // Server tenant ("" for in-process hosts).
  uint64_t plan_hash = 0;    // Stable hash of the compiled EXPLAIN text.
  double total_ms = 0;       // Wall clock of the execution.
  uint64_t rows = 0;
  uint64_t seeds = 0;
  uint64_t steps = 0;
  bool error = false;
  bool truncated = false;      // Budget tripped under kTruncate.
  bool cache_hit = false;      // Plan came from the plan cache.
  bool batch_engaged = false;  // The vectorized path ran >= 1 block.
};

/// Per-plan latency summary inside an entry: one row of the last-N
/// distinct-plans ring. `plan_hash` hashes the compiled EXPLAIN rendering,
/// so a replan that flips anchor/index/batch decisions produces a new row
/// even though the fingerprint (and so the entry) stays the same.
struct PlanRecord {
  uint64_t plan_hash = 0;
  uint64_t first_seen_us = 0;  // MonotonicMicros of the first execution.
  uint64_t last_seen_us = 0;   // ... and the most recent one.
  uint64_t calls = 0;
  double total_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
};

/// POD snapshot of one fingerprint's cumulative statistics.
struct QueryStatEntry {
  std::string fingerprint;
  uint64_t graph_token = 0;
  std::string tenant;

  uint64_t calls = 0;
  uint64_t errors = 0;
  uint64_t truncations = 0;
  uint64_t rows = 0;
  uint64_t seeds = 0;
  uint64_t steps = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t batch_calls = 0;  // Executions where the batch path engaged.
  double total_ms = 0;
  double min_ms = 0;
  double max_ms = 0;

  /// Log2 latency histogram, same bounds as obs::Histogram: bucket i
  /// counts executions <= 2^i microseconds, last slot is overflow.
  std::vector<uint64_t> latency_buckets;  // kNumBounds finite + 1 overflow.

  /// The last kMaxPlans distinct plans seen, oldest first; back() is the
  /// plan currently in use.
  std::vector<PlanRecord> plans;
  /// A later execution arrived under a plan hash different from the entry's
  /// current one — the planner (or a flag flip) changed its mind for this
  /// fingerprint. Sticky until the entry is evicted.
  bool plan_changed = false;
  /// Times the current-plan hash flipped (revisiting an old plan counts).
  uint64_t plan_changes = 0;
};

/// A bounded, LRU-evicted store of cumulative per-fingerprint statistics.
/// One mutex, one short critical section per *completed execution* —
/// completion is not the matcher's inner loop, so this stays well inside
/// the bench_obs 2% budget ("lock-cheap", not lock-free; the per-entry
/// histogram and plan ring make per-field atomics impractical).
///
/// Entries are keyed by (tenant, fingerprint): the server keeps tenants'
/// workloads distinguishable, in-process hosts all record under tenant ""
/// Graph identity is a field, not a key — host surfaces filter on it
/// (Session::QueryStats / pgq::GraphTableQueryStats), matching the
/// slow-query log's discipline.
class QueryStatsStore {
 public:
  static constexpr size_t kDefaultCapacity = 1024;
  static constexpr size_t kMaxPlans = 4;

  explicit QueryStatsStore(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// What one Record call did, so the caller can publish counters without
  /// re-deriving store state (which would race).
  struct RecordOutcome {
    /// The observation arrived under a plan hash different from the
    /// entry's current plan — a plan change (an entry's first observation
    /// is never a change: there was no prior plan to change from).
    bool plan_changed = false;
    bool new_entry = false;  // First observation of this (tenant, query).
    bool evicted = false;    // Making room dropped the LRU entry.
  };

  /// Folds one completed execution into its entry (created on first
  /// sight, evicting the least-recently-updated entry at capacity).
  RecordOutcome Record(const QueryObservation& obs);

  /// All retained entries, most-recently-updated first.
  std::vector<QueryStatEntry> Snapshot() const;

  uint64_t total_recorded() const;
  uint64_t evictions() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  struct Key {
    std::string tenant;
    std::string fingerprint;
    bool operator==(const Key& o) const {
      return tenant == o.tenant && fingerprint == o.fingerprint;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    QueryStatEntry stats;
    std::list<Key>::iterator lru_pos;
  };

  mutable std::mutex mu_;
  const size_t capacity_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::list<Key> lru_;  // Front = most recently updated.
  uint64_t recorded_ = 0;
  uint64_t evictions_ = 0;
};

/// 64-bit FNV-1a of a rendered plan — the stable plan hash. Pure function
/// of the text, so identical EXPLAIN renderings (cache hits, re-plans that
/// reach the same plan) hash identically across processes and runs.
uint64_t HashPlanText(const std::string& explain_text);

/// The process-wide store the engine uses when EngineOptions::query_stats
/// is null. Never destroyed (safe during static teardown).
QueryStatsStore& GlobalQueryStats();

}  // namespace obs
}  // namespace gpml

#endif  // GPML_OBS_QUERY_STATS_H_
