#include "baseline/rpq_nfa.h"

#include <algorithm>
#include <deque>
#include <queue>

namespace gpml {
namespace baseline {

namespace {

class NfaBuilder {
 public:
  RpqNfa Build(const Regex& r) {
    auto [s, a] = Compile(r);
    nfa_.start = s;
    nfa_.accept = a;
    nfa_.out.assign(static_cast<size_t>(nfa_.num_states), {});
    for (size_t i = 0; i < nfa_.steps.size(); ++i) {
      nfa_.out[static_cast<size_t>(nfa_.steps[i].from)].push_back(
          static_cast<int>(i));
    }
    return std::move(nfa_);
  }

 private:
  int NewState() { return nfa_.num_states++; }

  void Eps(int from, int to) {
    RpqNfa::Step s;
    s.from = from;
    s.to = to;
    s.epsilon = true;
    nfa_.steps.push_back(std::move(s));
  }

  void LabelStep(int from, int to, const std::string& label, bool inverse) {
    RpqNfa::Step s;
    s.from = from;
    s.to = to;
    s.epsilon = false;
    s.inverse = inverse;
    s.label = label;
    nfa_.steps.push_back(std::move(s));
  }

  std::pair<int, int> Compile(const Regex& r) {
    switch (r.kind) {
      case Regex::Kind::kLabel:
      case Regex::Kind::kInverse: {
        int s = NewState();
        int a = NewState();
        LabelStep(s, a, r.label, r.kind == Regex::Kind::kInverse);
        return {s, a};
      }
      case Regex::Kind::kConcat: {
        auto [ls, la] = Compile(*r.left);
        auto [rs, ra] = Compile(*r.right);
        Eps(la, rs);
        return {ls, ra};
      }
      case Regex::Kind::kUnion: {
        int s = NewState();
        int a = NewState();
        auto [ls, la] = Compile(*r.left);
        auto [rs, ra] = Compile(*r.right);
        Eps(s, ls);
        Eps(s, rs);
        Eps(la, a);
        Eps(ra, a);
        return {s, a};
      }
      case Regex::Kind::kStar: {
        int s = NewState();
        int a = NewState();
        auto [bs, ba] = Compile(*r.left);
        Eps(s, bs);
        Eps(s, a);
        Eps(ba, bs);
        Eps(ba, a);
        return {s, a};
      }
      case Regex::Kind::kPlus: {
        auto [bs, ba] = Compile(*r.left);
        int a = NewState();
        Eps(ba, bs);
        Eps(ba, a);
        return {bs, a};
      }
      case Regex::Kind::kOpt: {
        int s = NewState();
        int a = NewState();
        auto [bs, ba] = Compile(*r.left);
        Eps(s, bs);
        Eps(s, a);
        Eps(ba, a);
        return {s, a};
      }
    }
    return {NewState(), NewState()};
  }

  RpqNfa nfa_;
};

/// Product-state helpers: id = node * num_states + state.
inline size_t ProductId(NodeId n, int state, int num_states) {
  return static_cast<size_t>(n) * static_cast<size_t>(num_states) +
         static_cast<size_t>(state);
}

/// Admissible (edge, next-node) moves for a label step from `n`.
template <typename Fn>
void ForEachMove(const PropertyGraph& g, NodeId n, const RpqNfa::Step& step,
                 Fn&& fn) {
  for (const Adjacency& adj : g.adjacencies(n)) {
    // Baseline RPQs (SPARQL/CRPQ) treat graphs as directed edge-labelled:
    // forward steps follow edge direction, ^label steps go against it.
    // Undirected edges are admissible in both directions.
    bool forward_ok = adj.traversal == Traversal::kForward ||
                      adj.traversal == Traversal::kUndirected;
    bool backward_ok = adj.traversal == Traversal::kBackward ||
                       adj.traversal == Traversal::kUndirected;
    if (step.inverse ? !backward_ok : !forward_ok) continue;
    if (!g.edge(adj.edge).HasLabel(step.label)) continue;
    fn(adj);
  }
}

}  // namespace

RpqNfa BuildNfa(const Regex& regex) {
  NfaBuilder b;
  return b.Build(regex);
}

std::vector<NodeId> EvalReachableFrom(const PropertyGraph& g,
                                      const RpqNfa& nfa, NodeId source) {
  const int ns = nfa.num_states;
  std::vector<bool> visited(g.num_nodes() * static_cast<size_t>(ns), false);
  std::deque<std::pair<NodeId, int>> queue;
  auto push = [&](NodeId n, int q) {
    size_t id = ProductId(n, q, ns);
    if (!visited[id]) {
      visited[id] = true;
      queue.push_back({n, q});
    }
  };
  push(source, nfa.start);

  std::vector<NodeId> reached;
  while (!queue.empty()) {
    auto [n, q] = queue.front();
    queue.pop_front();
    if (q == nfa.accept) reached.push_back(n);
    for (int si : nfa.out[static_cast<size_t>(q)]) {
      const RpqNfa::Step& step = nfa.steps[static_cast<size_t>(si)];
      if (step.epsilon) {
        push(n, step.to);
      } else {
        ForEachMove(g, n, step,
                    [&](const Adjacency& adj) { push(adj.neighbor, step.to); });
      }
    }
  }
  std::sort(reached.begin(), reached.end());
  reached.erase(std::unique(reached.begin(), reached.end()), reached.end());
  return reached;
}

std::vector<std::pair<NodeId, NodeId>> EvalReachability(
    const PropertyGraph& g, const RpqNfa& nfa) {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (NodeId m : EvalReachableFrom(g, nfa, n)) out.push_back({n, m});
  }
  return out;
}

Result<Path> ShortestRegexPath(const PropertyGraph& g, const RpqNfa& nfa,
                               NodeId source, NodeId target) {
  const int ns = nfa.num_states;
  struct Pred {
    size_t prev = SIZE_MAX;
    EdgeId edge = kInvalidId;
    Traversal traversal = Traversal::kForward;
    bool visited = false;
  };
  std::vector<Pred> pred(g.num_nodes() * static_cast<size_t>(ns));
  std::deque<std::pair<NodeId, int>> queue;

  auto push = [&](NodeId n, int q, size_t prev, EdgeId e, Traversal t) {
    size_t id = ProductId(n, q, ns);
    if (pred[id].visited) return;
    pred[id].visited = true;
    pred[id].prev = prev;
    pred[id].edge = e;
    pred[id].traversal = t;
    queue.push_back({n, q});
  };
  push(source, nfa.start, SIZE_MAX, kInvalidId, Traversal::kForward);

  // BFS with zero-cost epsilon edges handled eagerly: expand epsilons first
  // from each dequeued state (they do not add path length; BFS order over
  // edge steps stays correct because epsilon closure happens immediately).
  size_t accept_id = SIZE_MAX;
  while (!queue.empty() && accept_id == SIZE_MAX) {
    auto [n, q] = queue.front();
    queue.pop_front();
    size_t id = ProductId(n, q, ns);
    if (n == target && q == nfa.accept) {
      accept_id = id;
      break;
    }
    for (int si : nfa.out[static_cast<size_t>(q)]) {
      const RpqNfa::Step& step = nfa.steps[static_cast<size_t>(si)];
      if (step.epsilon) {
        // Zero-length move: inherit the predecessor record.
        size_t nid = ProductId(n, step.to, ns);
        if (!pred[nid].visited) {
          pred[nid] = pred[id];
          pred[nid].visited = true;
          queue.push_front({n, step.to});  // Front: zero-cost move.
          if (n == target && step.to == nfa.accept) {
            accept_id = nid;
            break;
          }
        }
      } else {
        ForEachMove(g, n, step, [&](const Adjacency& adj) {
          push(adj.neighbor, step.to, id, adj.edge, adj.traversal);
        });
      }
    }
  }

  if (accept_id == SIZE_MAX) {
    return Status::NotFound("no path matching the regex");
  }

  // Reconstruct the edge sequence.
  std::vector<std::pair<EdgeId, Traversal>> edges;
  for (size_t id = accept_id;
       id != SIZE_MAX && pred[id].edge != kInvalidId;) {
    edges.push_back({pred[id].edge, pred[id].traversal});
    id = pred[id].prev;
  }
  std::reverse(edges.begin(), edges.end());
  Path p(source);
  NodeId cur = source;
  for (auto& [e, t] : edges) {
    NodeId next = g.Cross(e, cur, t);
    p.Append(e, t, next);
    cur = next;
  }
  return p;
}

namespace {

/// Shared Dijkstra over the (node × nfa-state × layer) product. With
/// `max_hops` == SIZE_MAX the layer collapses to 0 and this is plain
/// weighted product search.
Result<Path> CheapestImpl(const PropertyGraph& g, const RpqNfa& nfa,
                          NodeId source, NodeId target,
                          const std::string& weight_property,
                          size_t max_hops, double default_weight) {
  const size_t ns = static_cast<size_t>(nfa.num_states);
  const size_t layers = max_hops == SIZE_MAX ? 1 : max_hops + 1;
  const bool layered = max_hops != SIZE_MAX;
  const size_t total = g.num_nodes() * ns * layers;

  auto id_of = [&](NodeId n, int q, size_t hops) {
    size_t layer = layered ? hops : 0;
    return (static_cast<size_t>(n) * ns + static_cast<size_t>(q)) * layers +
           layer;
  };
  // Pre-validate and cache edge costs: errors surface before the search.
  std::vector<double> cost(g.num_edges(), default_weight);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Value& w = g.edge(e).GetProperty(weight_property);
    if (w.is_null()) continue;
    if (!w.is_numeric()) {
      return Status::SemanticError("weight property " + weight_property +
                                   " is not numeric on edge " +
                                   g.edge(e).name);
    }
    if (w.AsDouble() < 0) {
      return Status::InvalidArgument(
          "negative edge weight on " + g.edge(e).name +
          "; Dijkstra requires non-negative costs");
    }
    cost[e] = w.AsDouble();
  }

  struct Entry {
    double dist;
    NodeId node;
    int state;
    size_t hops;
    bool operator>(const Entry& o) const { return dist > o.dist; }
  };
  struct Pred {
    double dist = -1.0;  // -1 = unvisited.
    size_t prev = SIZE_MAX;
    EdgeId edge = kInvalidId;
    Traversal traversal = Traversal::kForward;
  };
  std::vector<Pred> pred(total);
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;

  auto relax = [&](NodeId n, int q, size_t hops, double dist, size_t prev,
                   EdgeId e, Traversal t) {
    size_t id = id_of(n, q, hops);
    if (pred[id].dist >= 0 && pred[id].dist <= dist) return;
    pred[id] = {dist, prev, e, t};
    queue.push({dist, n, q, hops});
  };
  relax(source, nfa.start, 0, 0.0, SIZE_MAX, kInvalidId,
        Traversal::kForward);

  size_t accept_id = SIZE_MAX;
  while (!queue.empty()) {
    Entry cur = queue.top();
    queue.pop();
    size_t id = id_of(cur.node, cur.state, cur.hops);
    if (pred[id].dist < cur.dist) continue;  // Stale entry.
    if (cur.node == target && cur.state == nfa.accept) {
      accept_id = id;
      break;
    }
    for (int si : nfa.out[static_cast<size_t>(cur.state)]) {
      const RpqNfa::Step& step = nfa.steps[static_cast<size_t>(si)];
      if (step.epsilon) {
        // Zero-cost move: the predecessor record (last edge taken) carries
        // over unchanged for path reconstruction.
        relax(cur.node, step.to, cur.hops, cur.dist, pred[id].prev,
              pred[id].edge, pred[id].traversal);
        continue;
      }
      if (layered && cur.hops >= max_hops) continue;
      ForEachMove(g, cur.node, step, [&](const Adjacency& adj) {
        relax(adj.neighbor, step.to, cur.hops + 1,
              cur.dist + cost[adj.edge], id, adj.edge, adj.traversal);
      });
    }
  }

  if (accept_id == SIZE_MAX) {
    return Status::NotFound("no path matching the regex within the bounds");
  }

  std::vector<std::pair<EdgeId, Traversal>> edges;
  for (size_t id = accept_id;
       id != SIZE_MAX && pred[id].edge != kInvalidId;) {
    edges.push_back({pred[id].edge, pred[id].traversal});
    id = pred[id].prev;
  }
  std::reverse(edges.begin(), edges.end());
  Path p(source);
  NodeId cur = source;
  for (auto& [e, t] : edges) {
    NodeId next = g.Cross(e, cur, t);
    p.Append(e, t, next);
    cur = next;
  }
  return p;
}

}  // namespace

Result<Path> CheapestRegexPath(const PropertyGraph& g, const RpqNfa& nfa,
                               NodeId source, NodeId target,
                               const std::string& weight_property,
                               double default_weight) {
  return CheapestImpl(g, nfa, source, target, weight_property, SIZE_MAX,
                      default_weight);
}

Result<Path> CheapestRegexPathWithinHops(
    const PropertyGraph& g, const RpqNfa& nfa, NodeId source, NodeId target,
    const std::string& weight_property, size_t max_hops,
    double default_weight) {
  return CheapestImpl(g, nfa, source, target, weight_property, max_hops,
                      default_weight);
}

}  // namespace baseline
}  // namespace gpml
