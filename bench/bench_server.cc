// Network server contract gate (docs/server.md):
//
//   * byte-identity — a fleet of client threads executes >= 1000
//     parameterized queries against an in-process server and every result
//     row, as raw response bytes, equals the in-process engine's
//     RowToJson output for the same binding (transport adds nothing,
//     loses nothing);
//   * concurrency — the fleet runs on 8 connections concurrently through
//     the bounded worker pool with zero spurious failures;
//   * tail latency — per-query wall times are summarized as p50/p95/p99
//     into BENCH_server.json (bench_util.h percentile helpers);
//   * graceful shutdown — Stop() drains with a cursor still open and a
//     subsequent fetch fails with a transport error, not a hang.
//
// Run under ctest as bench_server_contract; exits non-zero on violation.

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "eval/engine.h"
#include "gql/json_export.h"
#include "graph/generator.h"
#include "obs/clock.h"
#include "server/client.h"
#include "server/server.h"

namespace gpml {
namespace {

constexpr int kAccounts = 300;
constexpr int kClientThreads = 8;
constexpr int kQueriesPerThread = 150;  // 1200 total, > the 1000 floor.

// Parameterized fraud probe: suspect account by $owner, transfers out to
// blocked receivers. MATCH-only text — the engine-level prepare surface
// the server exposes.
constexpr char kQuery[] =
    "MATCH (x:Account WHERE x.isBlocked='no' AND x.owner = $owner)"
    "-[t:Transfer]->(y:Account WHERE y.isBlocked='yes')";

FraudGraphOptions WorkloadOptions() {
  FraudGraphOptions options;
  options.num_accounts = kAccounts;
  return options;
}

Params OwnerParams(int index) {
  return Params{{"owner", Value::String("u" + std::to_string(index))}};
}

/// The in-process oracle: expected row bytes per $owner binding, computed
/// on an identical (same generator, same seed) graph.
std::vector<std::vector<std::string>> ComputeExpected(
    const PropertyGraph& graph) {
  Engine engine(graph);
  Result<PreparedQuery> prepared = engine.Prepare(kQuery);
  if (!prepared.ok()) {
    std::fprintf(stderr, "oracle prepare failed: %s\n",
                 prepared.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<std::vector<std::string>> expected(kAccounts);
  for (int i = 0; i < kAccounts; ++i) {
    Result<MatchOutput> output = prepared->Execute(OwnerParams(i));
    if (!output.ok()) {
      std::fprintf(stderr, "oracle execute failed: %s\n",
                   output.status().ToString().c_str());
      std::exit(1);
    }
    expected[i].reserve(output->rows.size());
    for (const ResultRow& row : output->rows) {
      expected[i].push_back(RowToJson(*output, row, graph));
    }
  }
  return expected;
}

struct FleetResult {
  std::vector<double> latencies_ms;
  size_t rows = 0;
  size_t failures = 0;
  size_t mismatches = 0;
};

FleetResult RunFleet(int port,
                     const std::vector<std::vector<std::string>>& expected) {
  std::mutex mu;
  FleetResult merged;
  std::vector<std::thread> threads;
  threads.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([t, port, &expected, &mu, &merged] {
      FleetResult local;
      Result<server::Client> client =
          server::Client::Connect("127.0.0.1", port, "bench");
      if (!client.ok() || !client->UseGraph("fraud").ok()) {
        local.failures += kQueriesPerThread;
        std::lock_guard<std::mutex> lock(mu);
        merged.failures += local.failures;
        return;
      }
      Result<server::Client::PreparedInfo> prepared =
          client->Prepare(kQuery);
      if (!prepared.ok()) {
        local.failures += kQueriesPerThread;
        std::lock_guard<std::mutex> lock(mu);
        merged.failures += local.failures;
        return;
      }
      for (int i = 0; i < kQueriesPerThread; ++i) {
        int owner = (t * kQueriesPerThread + i) % kAccounts;
        obs::Stopwatch watch;
        Result<server::ExecuteResult> result =
            client->Execute(prepared->stmt, OwnerParams(owner));
        double ms = static_cast<double>(watch.ElapsedMicros()) / 1e3;
        if (!result.ok()) {
          ++local.failures;
          continue;
        }
        local.latencies_ms.push_back(ms);
        local.rows += result->rows.size();
        const std::vector<std::string>& want = expected[owner];
        if (result->rows.size() != want.size()) {
          ++local.mismatches;
        } else {
          for (size_t r = 0; r < want.size(); ++r) {
            if (result->rows[r].raw != want[r]) {
              ++local.mismatches;
              break;
            }
          }
        }
      }
      client->Bye();
      std::lock_guard<std::mutex> lock(mu);
      merged.failures += local.failures;
      merged.mismatches += local.mismatches;
      merged.rows += local.rows;
      merged.latencies_ms.insert(merged.latencies_ms.end(),
                                 local.latencies_ms.begin(),
                                 local.latencies_ms.end());
    });
  }
  for (std::thread& thread : threads) thread.join();
  return merged;
}

/// Stop() must drain and return with a client cursor still open, and the
/// abandoned client must see a clean transport error afterwards.
bool ShutdownDrainContract(server::Server* srv) {
  Result<server::Client> client =
      server::Client::Connect("127.0.0.1", srv->port(), "drain");
  if (!client.ok() || !client->UseGraph("fraud").ok()) return false;
  Result<server::Client::PreparedInfo> prepared =
      client->Prepare("MATCH (x:Account)-[t:Transfer]->(y:Account)");
  if (!prepared.ok()) return false;
  Result<int64_t> cursor = client->Open(prepared->stmt);
  if (!cursor.ok()) return false;
  Result<server::ExecuteResult> page = client->Fetch(*cursor, 16);
  if (!page.ok() || page->rows.empty()) return false;

  srv->Stop();  // Must not hang on the open connection/cursor.

  Result<server::ExecuteResult> after = client->Fetch(*cursor, 16);
  if (after.ok()) {
    std::fprintf(stderr, "fetch succeeded after server Stop()\n");
    return false;
  }
  return true;
}

}  // namespace
}  // namespace gpml

int main() {
  using namespace gpml;

  PropertyGraph oracle_graph = MakeFraudGraph(WorkloadOptions());
  std::vector<std::vector<std::string>> expected =
      ComputeExpected(oracle_graph);
  size_t expected_rows = 0;
  for (const auto& rows : expected) expected_rows += rows.size();
  std::printf("oracle: %d bindings, %zu total rows\n", kAccounts,
              expected_rows);

  server::ServerOptions options;
  options.worker_threads = 8;
  options.max_queue = 4096;
  server::Server srv(options);
  if (!srv.AddGraph("fraud", MakeFraudGraph(WorkloadOptions())).ok()) {
    std::fprintf(stderr, "AddGraph failed\n");
    return 1;
  }
  Status started = srv.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  obs::Stopwatch wall;
  FleetResult fleet = RunFleet(srv.port(), expected);
  double wall_ms = wall.ElapsedMs();

  const size_t total = static_cast<size_t>(kClientThreads) *
                       static_cast<size_t>(kQueriesPerThread);
  std::printf(
      "fleet: %zu queries over %d connections in %.1f ms "
      "(%zu rows, %zu failures, %zu mismatched)\n",
      total, kClientThreads, wall_ms, fleet.rows, fleet.failures,
      fleet.mismatches);

  // The server's own telemetry must be visible through the aggregate the
  // /metrics endpoint serves.
  bool metrics_ok = false;
  {
    Result<server::Client> probe =
        server::Client::Connect("127.0.0.1", srv.port(), "probe");
    if (probe.ok()) {
      Result<std::string> text = probe->Metrics();
      metrics_ok = text.ok() &&
                   text->find("gpml_server_queries_total") !=
                       std::string::npos;
      probe->Bye();
    }
  }

  bool drained = ShutdownDrainContract(&srv);

  std::vector<std::pair<std::string, double>> extra =
      bench::LatencySummary(fleet.latencies_ms);
  extra.emplace_back("connections", kClientThreads);
  extra.emplace_back("queries", static_cast<double>(total));
  extra.emplace_back("qps", wall_ms > 0 ? 1e3 * static_cast<double>(total) /
                                              wall_ms
                                        : 0);
  extra.emplace_back("failures", static_cast<double>(fleet.failures));
  extra.emplace_back("mismatches", static_cast<double>(fleet.mismatches));
  bench::JsonReport report("server");
  report.Add("fraud300_execute_8x150", wall_ms, 0, 0, fleet.rows, extra);
  report.Write();

  bool ok = true;
  if (fleet.failures != 0) {
    std::fprintf(stderr, "FAIL: %zu queries failed\n", fleet.failures);
    ok = false;
  }
  if (fleet.mismatches != 0) {
    std::fprintf(stderr, "FAIL: %zu queries returned rows differing from "
                         "the in-process oracle\n",
                 fleet.mismatches);
    ok = false;
  }
  if (fleet.latencies_ms.size() != total) {
    std::fprintf(stderr, "FAIL: expected %zu latency samples, got %zu\n",
                 total, fleet.latencies_ms.size());
    ok = false;
  }
  if (!metrics_ok) {
    std::fprintf(stderr, "FAIL: /metrics aggregate is missing "
                         "gpml_server_queries_total\n");
    ok = false;
  }
  if (!drained) {
    std::fprintf(stderr, "FAIL: graceful-shutdown drain contract\n");
    ok = false;
  }
  if (!ok) return 1;
  std::printf("bench_server: all contracts PASSED\n");
  return 0;
}
