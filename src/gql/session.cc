#include "gql/session.h"

#include "gql/result_table.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/snapshot_filter.h"
#include "parser/parser.h"
#include "planner/explain.h"

namespace gpml {

Status Session::UseGraph(const std::string& name) {
  GPML_ASSIGN_OR_RETURN(graph_, catalog_.GetGraph(name));
  return Status::OK();
}

Result<PreparedStatement> Session::Prepare(
    const std::string& statement) const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("no graph selected; call UseGraph first");
  }
  GPML_ASSIGN_OR_RETURN(MatchStatement stmt, ParseStatement(statement));
  Engine engine(*graph_, options_);
  GPML_ASSIGN_OR_RETURN(PreparedQuery query, engine.Prepare(stmt.pattern));
  // RETURN items may reference parameters the pattern does not.
  query.ExtendSignature(CollectItemParams(stmt.return_items));
  return PreparedStatement(graph_, std::move(query), std::move(stmt));
}

Result<Table> PreparedStatement::Execute(const Params& params) const {
  // LIMIT pushes into the cursor when the projection is row-for-row (no
  // DISTINCT); DISTINCT must keep pulling until enough distinct projected
  // rows arrived, so the cursor stays unbounded and the projection stops.
  std::optional<uint64_t> cursor_limit =
      stmt_.return_distinct ? std::nullopt : stmt_.limit;
  GPML_ASSIGN_OR_RETURN(Cursor cursor, query_.Open(params, cursor_limit));
  if (!stmt_.has_return) {
    GPML_ASSIGN_OR_RETURN(MatchOutput output, cursor.Drain());
    return ProjectAllVariables(output, *graph_);
  }
  return ProjectCursor(cursor, *graph_, stmt_.return_items,
                       stmt_.return_distinct, stmt_.limit);
}

Result<Table> Session::Execute(const std::string& statement,
                               const Params& params) const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("no graph selected; call UseGraph first");
  }
  std::string rest;
  if (planner::StripExplainPrefix(statement, &rest)) {
    GPML_ASSIGN_OR_RETURN(std::string text, Explain(rest, params));
    return planner::ExplainTable(text);
  }
  GPML_ASSIGN_OR_RETURN(PreparedStatement prepared, Prepare(statement));
  return prepared.Execute(params);
}

Result<MatchOutput> Session::Match(const std::string& match_text) const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("no graph selected; call UseGraph first");
  }
  Engine engine(*graph_, options_);
  return engine.Match(match_text);
}

Result<analysis::DiagnosticList> Session::Lint(
    const std::string& match_text) const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("no graph selected; call UseGraph first");
  }
  Engine engine(*graph_, options_);
  return engine.Lint(match_text);
}

Result<std::string> Session::MetricsText() const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("no graph selected; call UseGraph first");
  }
  return obs::RenderPrometheus(*graph_->metrics_registry());
}

Result<std::vector<obs::SlowQueryRecord>> Session::SlowQueries() const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("no graph selected; call UseGraph first");
  }
  const obs::SlowQueryLog& log = options_.slow_log != nullptr
                                     ? *options_.slow_log
                                     : obs::GlobalSlowQueryLog();
  return obs::FilterByGraphToken(log.Snapshot(), graph_->identity_token());
}

Result<std::vector<obs::QueryStatEntry>> Session::QueryStats() const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("no graph selected; call UseGraph first");
  }
  const obs::QueryStatsStore& store = options_.query_stats != nullptr
                                          ? *options_.query_stats
                                          : obs::GlobalQueryStats();
  return obs::FilterByGraphToken(store.Snapshot(),
                                 graph_->identity_token());
}

Result<std::string> Session::Explain(const std::string& statement,
                                     const Params& params) const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("no graph selected; call UseGraph first");
  }
  std::string text = statement;
  std::string rest;
  if (planner::StripExplainPrefix(text, &rest)) text = rest;
  bool analyze = false;
  if (planner::StripAnalyzePrefix(text, &rest)) {
    analyze = true;
    text = rest;
  }
  GPML_ASSIGN_OR_RETURN(MatchStatement stmt, ParseStatement(text));
  Engine engine(*graph_, options_);
  if (!analyze) return engine.Explain(stmt.pattern);
  // ANALYZE executes the MATCH part only (RETURN is parsed, not
  // evaluated, mirroring EXPLAIN): bindings for RETURN-only parameters
  // are dropped, but a name the statement never references is still the
  // usual unknown-parameter error.
  GPML_ASSIGN_OR_RETURN(
      Params pattern_params,
      PatternOnlyParams(CollectPatternParams(stmt.pattern),
                        CollectItemParams(stmt.return_items), params));
  return engine.ExplainAnalyze(stmt.pattern, pattern_params);
}

}  // namespace gpml
